//! Integration: consumer groups driving manual-assignment consumers — join,
//! consume a share, commit, rebalance, and resume from committed offsets.

use samzasql_kafka::{Assignor, Broker, Consumer, Message, TopicConfig, TopicPartition};

fn broker_with_data(partitions: u32, per_partition: u32) -> Broker {
    let b = Broker::new();
    b.create_topic("t", TopicConfig::with_partitions(partitions))
        .unwrap();
    for p in 0..partitions {
        for i in 0..per_partition {
            b.produce("t", p, Message::new(format!("p{p}m{i}")))
                .unwrap();
        }
    }
    b
}

#[test]
fn two_members_split_and_consume_everything() {
    let b = broker_with_data(4, 10);
    let gc = b.group_coordinator();
    gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
    let m2 = gc.join(&b, "g", "m2", &["t"], Assignor::Range).unwrap();
    let gen = m2.generation;

    let mut total = 0;
    for member in ["m1", "m2"] {
        let assignment = gc.assignment("g", member, gen).unwrap();
        assert_eq!(assignment.len(), 2, "4 partitions over 2 members");
        let mut consumer = Consumer::new(b.clone());
        for tp in &assignment {
            consumer.assign_at(tp.clone(), 0);
        }
        loop {
            let records = consumer.poll(100);
            if records.is_empty() {
                break;
            }
            total += records.len();
        }
        // Commit final positions.
        for tp in &assignment {
            let pos = consumer.position(tp).unwrap();
            b.offsets().commit("g", tp.clone(), pos);
        }
    }
    assert_eq!(
        total, 40,
        "every record consumed exactly once across members"
    );
}

#[test]
fn rebalance_survivor_resumes_from_committed_offsets() {
    let b = broker_with_data(2, 5);
    let gc = b.group_coordinator();
    gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
    let m2 = gc.join(&b, "g", "m2", &["t"], Assignor::Range).unwrap();

    // Each member consumes 3 of its 5 records and commits.
    for member in ["m1", "m2"] {
        let assignment = gc.assignment("g", member, m2.generation).unwrap();
        let tp = &assignment[0];
        let mut c = Consumer::new(b.clone());
        c.assign_at(tp.clone(), 0);
        let got = c.poll(3);
        assert_eq!(got.len(), 3);
        b.offsets().commit("g", tp.clone(), c.position(tp).unwrap());
    }

    // m1 leaves; m2 takes over both partitions and resumes at the commits.
    gc.leave(&b, "g", "m1").unwrap();
    let gen = gc.generation("g").unwrap();
    let assignment = gc.assignment("g", "m2", gen).unwrap();
    assert_eq!(assignment.len(), 2);
    let mut c = Consumer::new(b.clone());
    let mut remaining = 0;
    for tp in &assignment {
        let committed = b.offsets().fetch("g", tp).unwrap_or(0);
        assert_eq!(committed, 3, "resume point from the dead member's commit");
        c.assign_at(tp.clone(), committed);
    }
    loop {
        let records = c.poll(100);
        if records.is_empty() {
            break;
        }
        remaining += records.len();
    }
    assert_eq!(remaining, 4, "2 partitions × 2 uncommitted records each");
}

#[test]
fn committed_offsets_are_per_group() {
    let b = broker_with_data(1, 5);
    let tp = TopicPartition::new("t", 0);
    b.offsets().commit("analytics", tp.clone(), 5);
    // A fresh group starts from the beginning regardless.
    assert_eq!(b.offsets().fetch("audit", &tp), None);
    let mut c = Consumer::new(b.clone());
    c.assign_at(tp, 0);
    assert_eq!(c.poll(100).len(), 5, "audit group reads the full history");
}
