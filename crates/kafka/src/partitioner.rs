//! Producer-side partition selection.
//!
//! §3.1: "How a stream is partitioned is defined by the publisher at
//! publishing time." The default mirrors Kafka: hash of the key when present,
//! round-robin ("sticky-less") otherwise.

use crate::message::Message;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Strategy for mapping a message to a partition.
#[derive(Debug)]
pub enum Partitioner {
    /// FNV-style hash of the key modulo partition count; keyless messages
    /// fall back to round-robin. This is the Kafka default and what keeps
    /// co-partitioned joins aligned (§4.4).
    KeyHash { round_robin: AtomicU64 },
    /// Strict round-robin regardless of key.
    RoundRobin { counter: AtomicU64 },
    /// Always the given partition.
    Fixed(u32),
}

impl Partitioner {
    pub fn key_hash() -> Self {
        Partitioner::KeyHash {
            round_robin: AtomicU64::new(0),
        }
    }

    pub fn round_robin() -> Self {
        Partitioner::RoundRobin {
            counter: AtomicU64::new(0),
        }
    }

    /// Choose the partition for `message` among `partitions` partitions.
    pub fn partition(&self, message: &Message, partitions: u32) -> u32 {
        debug_assert!(partitions > 0);
        match self {
            Partitioner::KeyHash { round_robin } => match &message.key {
                Some(key) => hash_bytes(key) % partitions,
                None => (round_robin.fetch_add(1, Ordering::Relaxed) % partitions as u64) as u32,
            },
            Partitioner::RoundRobin { counter } => {
                (counter.fetch_add(1, Ordering::Relaxed) % partitions as u64) as u32
            }
            Partitioner::Fixed(p) => p % partitions,
        }
    }
}

/// Stable hash used for key partitioning. Uses the std `DefaultHasher` seeded
/// deterministically so partition placement is reproducible across runs
/// (important for deterministic benchmarks and co-partitioning tests).
pub fn hash_bytes(bytes: &[u8]) -> u32 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    bytes.hash(&mut h);
    (h.finish() % u64::from(u32::MAX)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_hash_is_deterministic() {
        let p = Partitioner::key_hash();
        let m = Message::keyed("product-17", "x");
        let first = p.partition(&m, 32);
        for _ in 0..10 {
            assert_eq!(p.partition(&m, 32), first);
        }
    }

    #[test]
    fn keyless_messages_round_robin() {
        let p = Partitioner::key_hash();
        let m = Message::new("x");
        let seq: Vec<u32> = (0..4).map(|_| p.partition(&m, 4)).collect();
        assert_eq!(seq, vec![0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_cycles() {
        let p = Partitioner::round_robin();
        let m = Message::keyed("ignored", "x");
        let seq: Vec<u32> = (0..5).map(|_| p.partition(&m, 3)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn fixed_clamps_to_partition_count() {
        let p = Partitioner::Fixed(7);
        let m = Message::new("x");
        assert_eq!(p.partition(&m, 4), 3);
    }

    #[test]
    fn key_hash_spreads_keys() {
        let p = Partitioner::key_hash();
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let m = Message::keyed(format!("key-{i}"), "x");
            seen.insert(p.partition(&m, 16));
        }
        assert!(
            seen.len() >= 12,
            "200 keys over 16 partitions should hit most: {seen:?}"
        );
    }
}
