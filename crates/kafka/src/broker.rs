//! The broker: topic registry, produce/fetch entry points, group
//! coordinator, and offset store.

use crate::error::{FaultOp, KafkaError, Result};
use crate::fault::FaultInjector;
use crate::group::GroupCoordinator;
use crate::log::FetchResult;
use crate::message::{Message, TopicPartition};
use crate::metrics::BrokerMetrics;
use crate::offsets::OffsetStore;
use crate::replication::{AckMode, ReplicaSet};
use crate::throttle::IoThrottle;
use crate::topic::{Topic, TopicConfig};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared handle to the in-process broker "cluster".
///
/// Cloning is cheap (an `Arc`); every producer, consumer, container, and the
/// query shell hold clones of the same broker.
#[derive(Clone)]
pub struct Broker {
    inner: Arc<BrokerInner>,
}

struct BrokerInner {
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    replicas: Mutex<HashMap<TopicPartition, ReplicaSet>>,
    offsets: OffsetStore,
    groups: GroupCoordinator,
    metrics: BrokerMetrics,
    /// Registry the broker publishes into once [`Broker::bind_metrics`] has
    /// run; later-installed throttles register themselves here too.
    registry: RwLock<Option<samzasql_obs::MetricsRegistry>>,
    throttle: RwLock<Option<Arc<IoThrottle>>>,
    /// Seeded fault injector intercepting produce/fetch (off by default).
    injector: RwLock<Option<Arc<FaultInjector>>>,
    /// True once any topic was created with `replication_factor > 1`. Lets
    /// the hot produce/fetch paths skip the replica-set mutex entirely in
    /// the common single-replica configuration.
    has_replicated: AtomicBool,
}

impl Broker {
    /// Create an empty broker with its own coordination service.
    pub fn new() -> Self {
        Broker::with_coord(samzasql_coord::Coord::new())
    }

    /// Create an empty broker whose group coordinator runs over a shared
    /// coordination service — so consumer-group membership, container
    /// liveness, and query metadata can live in one znode tree.
    pub fn with_coord(coord: samzasql_coord::Coord) -> Self {
        Broker {
            inner: Arc::new(BrokerInner {
                topics: RwLock::new(HashMap::new()),
                replicas: Mutex::new(HashMap::new()),
                offsets: OffsetStore::new(),
                groups: GroupCoordinator::with_coord(coord),
                metrics: BrokerMetrics::default(),
                registry: RwLock::new(None),
                throttle: RwLock::new(None),
                injector: RwLock::new(None),
                has_replicated: AtomicBool::new(false),
            }),
        }
    }

    /// The coordination service backing this broker's group coordinator.
    pub fn coord(&self) -> &samzasql_coord::Coord {
        self.inner.groups.coord()
    }

    /// Publish this broker's traffic counters (and any installed throttle's
    /// instruments) into a shared metrics registry under `kafka.*`. The
    /// registry is remembered so throttles installed later register too.
    pub fn bind_metrics(&self, registry: &samzasql_obs::MetricsRegistry) {
        self.inner.metrics.register_into(registry, &[]);
        if let Some(throttle) = self.inner.throttle.read().clone() {
            throttle.register_into(registry, &[]);
        }
        *self.inner.registry.write() = Some(registry.clone());
    }

    /// Install an I/O throttle applied to all produce traffic (simulates the
    /// EC2 burst-credit behaviour; off by default). If the broker is bound
    /// to a metrics registry, the throttle's instruments are published so
    /// §5.1-style throttling shows up in snapshots.
    pub fn set_throttle(&self, throttle: Option<Arc<IoThrottle>>) {
        if let (Some(t), Some(registry)) = (&throttle, self.inner.registry.read().as_ref()) {
            t.register_into(registry, &[]);
        }
        *self.inner.throttle.write() = throttle;
    }

    /// Install (or remove) a seeded fault injector. While installed, every
    /// produce and fetch consults it *before* touching the log, so injected
    /// produce errors never leave a partially-appended record behind and a
    /// client retry cannot duplicate data.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.inner.injector.write() = injector;
    }

    /// The currently installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.inner.injector.read().clone()
    }

    /// Run the fault injector for one operation; count surfaced errors.
    fn intercept(&self, op: FaultOp, topic: &str, partition: u32) -> Result<()> {
        let injector = self.inner.injector.read().clone();
        if let Some(injector) = injector {
            if let Err(e) = injector.intercept(op, topic, partition) {
                self.inner.metrics.record_fault_injected();
                return Err(e);
            }
        }
        Ok(())
    }

    /// Election + ack gate for one partition. While a leader election is
    /// pending the operation fails with the retriable `LeaderNotAvailable`
    /// (each attempt advances the election, so retries alone complete it);
    /// once a leader exists, `acks=all` requires the configured minimum ISR.
    fn check_leader_and_acks(&self, topic: &str, partition: u32, acks: AckMode) -> Result<()> {
        if !self.inner.has_replicated.load(Ordering::Relaxed) {
            return Ok(());
        }
        let mut reps = self.inner.replicas.lock();
        if let Some(rs) = reps.get_mut(&TopicPartition::new(topic, partition)) {
            if rs.election_pending() {
                let epoch = rs.leader_epoch();
                rs.note_attempt();
                return Err(KafkaError::LeaderNotAvailable {
                    topic: topic.to_string(),
                    partition,
                    epoch,
                });
            }
            rs.check_ack(acks, topic, partition)?;
        }
        Ok(())
    }

    /// Highest offset visible to fetches on this partition: the committed
    /// offset (high watermark) under replication, the log end otherwise.
    /// Capping visibility here is what makes leader failover safe — a record
    /// that could still be truncated away is never handed to a consumer.
    fn visible_end(&self, topic: &str, partition: u32, leader_end: u64) -> u64 {
        if !self.inner.has_replicated.load(Ordering::Relaxed) {
            return leader_end;
        }
        let reps = self.inner.replicas.lock();
        reps.get(&TopicPartition::new(topic, partition))
            .map(|rs| rs.committed_offset(leader_end))
            .unwrap_or(leader_end)
    }

    /// Create a topic. Errors if it already exists.
    pub fn create_topic(&self, name: impl Into<String>, config: TopicConfig) -> Result<Arc<Topic>> {
        let name = name.into();
        if config.partitions == 0 {
            return Err(KafkaError::InvalidConfig(format!(
                "topic {name} must have at least one partition"
            )));
        }
        let mut topics = self.inner.topics.write();
        if topics.contains_key(&name) {
            return Err(KafkaError::TopicExists(name));
        }
        let topic = Arc::new(Topic::new(name.clone(), config.clone()));
        {
            let mut reps = self.inner.replicas.lock();
            for p in 0..config.partitions {
                reps.insert(
                    TopicPartition::new(name.clone(), p),
                    ReplicaSet::new(config.replication.clone()),
                );
            }
        }
        if config.replication.replication_factor > 1 {
            self.inner.has_replicated.store(true, Ordering::Relaxed);
        }
        topics.insert(name, topic.clone());
        Ok(topic)
    }

    /// Create the topic if absent, otherwise return the existing one.
    pub fn ensure_topic(&self, name: impl Into<String>, config: TopicConfig) -> Result<Arc<Topic>> {
        let name = name.into();
        if let Some(t) = self.topic(&name) {
            return Ok(t);
        }
        match self.create_topic(name.clone(), config) {
            Ok(t) => Ok(t),
            Err(KafkaError::TopicExists(_)) => {
                Ok(self.topic(&name).expect("topic raced into existence"))
            }
            Err(e) => Err(e),
        }
    }

    /// Look up a topic.
    pub fn topic(&self, name: &str) -> Option<Arc<Topic>> {
        self.inner.topics.read().get(name).cloned()
    }

    /// List all topic names (sorted, for determinism).
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Partition count of a topic.
    pub fn partition_count(&self, topic: &str) -> Result<u32> {
        self.topic(topic)
            .map(|t| t.partition_count())
            .ok_or_else(|| KafkaError::UnknownTopic(topic.to_string()))
    }

    /// Append a message to a specific partition with default (leader) acks.
    /// Returns the assigned offset.
    pub fn produce(&self, topic: &str, partition: u32, message: Message) -> Result<u64> {
        self.produce_with_acks(topic, partition, message, AckMode::Leader)
    }

    /// Append with an explicit ack mode; `acks=all` consults the simulated
    /// in-sync replica set.
    pub fn produce_with_acks(
        &self,
        topic: &str,
        partition: u32,
        message: Message,
        acks: AckMode,
    ) -> Result<u64> {
        let t = self
            .topic(topic)
            .ok_or_else(|| KafkaError::UnknownTopic(topic.to_string()))?;
        let log = t
            .partition(partition)
            .ok_or_else(|| KafkaError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })?;
        self.intercept(FaultOp::Produce, topic, partition)?;
        self.check_leader_and_acks(topic, partition, acks)?;
        let bytes = message.payload_len() as u64;
        if let Some(throttle) = self.inner.throttle.read().clone() {
            // Benchmarks feed a wall-clock derived logical time; unit tests
            // can interrogate the throttle directly. Debt is informational.
            let _ = throttle.charge(bytes, 0.0);
        }
        let offset = log.write().append(message);
        self.inner.metrics.record_produce(1, bytes);
        Ok(offset)
    }

    /// Append a batch of messages to one partition, acquiring the partition
    /// log's write lock once for the whole batch (and checking acks /
    /// charging the throttle once). Returns the assigned offsets in input
    /// order — consecutive, since the lock is held across the batch.
    pub fn produce_batch(
        &self,
        topic: &str,
        partition: u32,
        messages: Vec<Message>,
        acks: AckMode,
    ) -> Result<Vec<u64>> {
        if messages.is_empty() {
            return Ok(Vec::new());
        }
        let t = self
            .topic(topic)
            .ok_or_else(|| KafkaError::UnknownTopic(topic.to_string()))?;
        let log = t
            .partition(partition)
            .ok_or_else(|| KafkaError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })?;
        self.intercept(FaultOp::Produce, topic, partition)?;
        self.check_leader_and_acks(topic, partition, acks)?;
        let count = messages.len() as u64;
        let bytes: u64 = messages.iter().map(|m| m.payload_len() as u64).sum();
        if let Some(throttle) = self.inner.throttle.read().clone() {
            let _ = throttle.charge(bytes, 0.0);
        }
        let mut offsets = Vec::with_capacity(messages.len());
        {
            let mut log = log.write();
            for message in messages {
                offsets.push(log.append(message));
            }
        }
        self.inner.metrics.record_produce(count, bytes);
        Ok(offsets)
    }

    /// Fetch up to `max_records` from `topic`/`partition` starting at
    /// `offset`.
    pub fn fetch(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_records: usize,
    ) -> Result<FetchResult> {
        let t = self
            .topic(topic)
            .ok_or_else(|| KafkaError::UnknownTopic(topic.to_string()))?;
        let log = t
            .partition(partition)
            .ok_or_else(|| KafkaError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })?;
        self.intercept(FaultOp::Fetch, topic, partition)?;
        self.check_leader_and_acks(topic, partition, AckMode::None)?;
        let mut result = log.read().fetch(offset, max_records)?;
        if self.inner.has_replicated.load(Ordering::Relaxed) {
            // Cap visibility at the high watermark: records not yet
            // replicated to the ISR could still be truncated by a leader
            // failover, so consumers must not see them.
            let visible = self.visible_end(topic, partition, result.high_watermark);
            if visible < result.high_watermark {
                result.records.retain(|r| r.offset < visible);
                result.high_watermark = visible;
            }
        }
        let bytes: u64 = result
            .records
            .iter()
            .map(|r| r.message.payload_len() as u64)
            .sum();
        self.inner
            .metrics
            .record_fetch(result.records.len() as u64, bytes);
        Ok(result)
    }

    /// Earliest retained offset of a partition.
    pub fn start_offset(&self, topic: &str, partition: u32) -> Result<u64> {
        let t = self
            .topic(topic)
            .ok_or_else(|| KafkaError::UnknownTopic(topic.to_string()))?;
        let log = t
            .partition(partition)
            .ok_or_else(|| KafkaError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })?;
        let off = log.read().start_offset();
        Ok(off)
    }

    /// Offset one past the newest record of a partition ("log end offset").
    pub fn end_offset(&self, topic: &str, partition: u32) -> Result<u64> {
        let t = self
            .topic(topic)
            .ok_or_else(|| KafkaError::UnknownTopic(topic.to_string()))?;
        let log = t
            .partition(partition)
            .ok_or_else(|| KafkaError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })?;
        let off = log.read().end_offset();
        Ok(off)
    }

    /// Advance the replication simulation for every partition (followers
    /// catch up, ISR recomputed, pending elections progress).
    pub fn replication_tick(&self) {
        let topics = self.inner.topics.read();
        let mut reps = self.inner.replicas.lock();
        let mut shrank = 0u64;
        let mut expanded = 0u64;
        for (tp, rs) in reps.iter_mut() {
            if let Some(t) = topics.get(&tp.topic) {
                if let Some(log) = t.partition(tp.partition) {
                    let end = log.read().end_offset();
                    let delta = rs.tick(end);
                    shrank += delta.shrank as u64;
                    expanded += delta.expanded as u64;
                }
            }
        }
        self.inner.metrics.record_isr_delta(shrank, expanded);
    }

    /// Kill the leader of `topic`/`partition`: the most-caught-up in-sync
    /// follower is promoted, the log truncates to the committed offset
    /// (acknowledged-but-unreplicated records are lost, exactly as Kafka
    /// loses `acks=1` writes), the leader epoch bumps, and clients see the
    /// retriable `LeaderNotAvailable` until the election window passes.
    /// Returns the new leader epoch. Errors with `NotEnoughReplicas` when no
    /// in-sync follower exists to promote.
    pub fn fail_leader(&self, topic: &str, partition: u32) -> Result<u64> {
        let t = self
            .topic(topic)
            .ok_or_else(|| KafkaError::UnknownTopic(topic.to_string()))?;
        let log = t
            .partition(partition)
            .ok_or_else(|| KafkaError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })?;
        let mut reps = self.inner.replicas.lock();
        let rs = reps
            .get_mut(&TopicPartition::new(topic, partition))
            .ok_or_else(|| KafkaError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })?;
        // Lock order everywhere is replicas -> log.
        let mut log = log.write();
        let committed = rs.fail_leader(log.end_offset(), topic, partition)?;
        log.truncate_to(committed);
        self.inner.metrics.record_leader_epoch_bump();
        Ok(rs.leader_epoch())
    }

    /// Fail follower `idx` of a partition's replica set (it stops
    /// replicating and leaves the ISR).
    pub fn fail_follower(&self, topic: &str, partition: u32, idx: usize) -> Result<()> {
        let mut reps = self.inner.replicas.lock();
        let rs = reps
            .get_mut(&TopicPartition::new(topic, partition))
            .ok_or_else(|| KafkaError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })?;
        if rs.fail_follower(idx, true) {
            self.inner.metrics.record_isr_delta(1, 0);
        }
        Ok(())
    }

    /// Restore a previously failed follower; it rejoins the ISR once caught
    /// up via [`replication_tick`](Broker::replication_tick).
    pub fn restore_follower(&self, topic: &str, partition: u32, idx: usize) -> Result<()> {
        let mut reps = self.inner.replicas.lock();
        let rs = reps
            .get_mut(&TopicPartition::new(topic, partition))
            .ok_or_else(|| KafkaError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })?;
        rs.restore_follower(idx);
        Ok(())
    }

    /// Current leader epoch of a partition (0 until the first failover).
    pub fn leader_epoch(&self, topic: &str, partition: u32) -> Result<u64> {
        let reps = self.inner.replicas.lock();
        reps.get(&TopicPartition::new(topic, partition))
            .map(|rs| rs.leader_epoch())
            .ok_or_else(|| KafkaError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            })
    }

    /// The committed offset (high watermark) of a partition — the highest
    /// offset fetches can observe under replication.
    pub fn high_watermark(&self, topic: &str, partition: u32) -> Result<u64> {
        let end = self.end_offset(topic, partition)?;
        Ok(self.visible_end(topic, partition, end))
    }

    /// Access the committed-offset store (consumer group offsets).
    pub fn offsets(&self) -> &OffsetStore {
        &self.inner.offsets
    }

    /// Access the consumer-group coordinator.
    pub fn group_coordinator(&self) -> &GroupCoordinator {
        &self.inner.groups
    }

    /// Broker traffic metrics.
    pub fn metrics(&self) -> &BrokerMetrics {
        &self.inner.metrics
    }
}

impl Default for Broker {
    fn default() -> Self {
        Broker::new()
    }
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("topics", &self.topic_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::SegmentConfig;
    use crate::replication::ReplicationConfig;

    #[test]
    fn create_and_lookup_topics() {
        let b = Broker::new();
        b.create_topic("a", TopicConfig::with_partitions(2))
            .unwrap();
        assert!(b.topic("a").is_some());
        assert!(b.topic("b").is_none());
        assert_eq!(b.partition_count("a").unwrap(), 2);
        assert!(matches!(
            b.create_topic("a", TopicConfig::with_partitions(1)),
            Err(KafkaError::TopicExists(_))
        ));
    }

    #[test]
    fn zero_partition_topic_rejected() {
        let b = Broker::new();
        assert!(matches!(
            b.create_topic("bad", TopicConfig::with_partitions(0)),
            Err(KafkaError::InvalidConfig(_))
        ));
    }

    #[test]
    fn ensure_topic_is_idempotent() {
        let b = Broker::new();
        let t1 = b
            .ensure_topic("t", TopicConfig::with_partitions(3))
            .unwrap();
        let t2 = b
            .ensure_topic("t", TopicConfig::with_partitions(5))
            .unwrap();
        assert_eq!(t1.partition_count(), 3);
        assert_eq!(t2.partition_count(), 3, "second ensure must not recreate");
    }

    #[test]
    fn produce_fetch_roundtrip() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        let o1 = b.produce("t", 0, Message::new("a")).unwrap();
        let o2 = b.produce("t", 0, Message::new("b")).unwrap();
        assert_eq!((o1, o2), (0, 1));
        let fetched = b.fetch("t", 0, 0, 10).unwrap();
        assert_eq!(fetched.records.len(), 2);
        assert_eq!(fetched.records[1].message.value.as_ref(), b"b");
        assert_eq!(fetched.high_watermark, 2);
    }

    #[test]
    fn produce_to_unknown_targets_errors() {
        let b = Broker::new();
        assert!(matches!(
            b.produce("nope", 0, Message::new("x")),
            Err(KafkaError::UnknownTopic(_))
        ));
        b.create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        assert!(matches!(
            b.produce("t", 9, Message::new("x")),
            Err(KafkaError::UnknownPartition { .. })
        ));
    }

    #[test]
    fn acks_all_with_lagging_isr_fails_until_tick() {
        let b = Broker::new();
        let cfg = TopicConfig::with_partitions(1)
            .segment(SegmentConfig::default())
            .replication(ReplicationConfig {
                replication_factor: 2,
                min_insync_replicas: 2,
                records_per_tick: 100,
                max_lag_records: 1,
                ..ReplicationConfig::default()
            });
        b.create_topic("t", cfg).unwrap();
        // Push the follower behind by producing with leader acks.
        for _ in 0..5 {
            b.produce("t", 0, Message::new("x")).unwrap();
        }
        // Follower lag is 5 > 1 ... but ISR only updates on tick; first force it.
        b.replication_tick(); // catches up fully (100 per tick)
        assert!(b
            .produce_with_acks("t", 0, Message::new("y"), AckMode::All)
            .is_ok());
    }

    #[test]
    fn produce_batch_assigns_consecutive_offsets() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(2))
            .unwrap();
        b.produce("t", 0, Message::new("seed")).unwrap();
        let offs = b
            .produce_batch(
                "t",
                0,
                vec![Message::new("a"), Message::new("b"), Message::new("c")],
                AckMode::Leader,
            )
            .unwrap();
        assert_eq!(offs, vec![1, 2, 3]);
        assert!(b
            .produce_batch("t", 0, Vec::new(), AckMode::Leader)
            .unwrap()
            .is_empty());
        let fetched = b.fetch("t", 0, 1, 10).unwrap();
        assert_eq!(fetched.records.len(), 3);
        assert_eq!(fetched.records[2].message.value.as_ref(), b"c");
    }

    #[test]
    fn produce_batch_counts_all_records_in_metrics() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        b.produce_batch(
            "t",
            0,
            vec![Message::new("ab"), Message::new("cd")],
            AckMode::Leader,
        )
        .unwrap();
        let (mi, bi, _, _) = b.metrics().snapshot();
        assert_eq!((mi, bi), (2, 4));
    }

    #[test]
    fn metrics_track_traffic() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        b.produce("t", 0, Message::new("abcd")).unwrap();
        b.fetch("t", 0, 0, 10).unwrap();
        let (mi, bi, mo, bo) = b.metrics().snapshot();
        assert_eq!((mi, bi, mo, bo), (1, 4, 1, 4));
    }
}
