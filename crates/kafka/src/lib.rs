//! # samzasql-kafka
//!
//! An in-memory, partitioned, replayable commit-log broker modelled on Apache
//! Kafka, built as the messaging substrate for the SamzaSQL reproduction.
//!
//! The broker implements the subset of Kafka semantics that Samza (and hence
//! SamzaSQL) relies on:
//!
//! * **Topics** split into a fixed number of **partitions**; each partition is
//!   an append-only, time-ordered, immutable sequence of records addressed by
//!   a dense, monotonically increasing **offset** (§3.1 of the paper).
//! * Ordering is guaranteed **within** a partition, never across partitions.
//! * Logs are **segmented** and support size/time based retention, so topics
//!   can retain "several hours to several days" of history for replay.
//! * **Producers** with pluggable partitioners (key-hash, round-robin,
//!   explicit).
//! * **Consumers** that poll by offset, plus **consumer groups** with a
//!   coordinator that assigns partitions to members (range / round-robin
//!   assignors) and stores committed offsets, mirroring Kafka's
//!   `__consumer_offsets`.
//! * A lightweight **replication** simulation (leader/ISR/acks) and an
//!   **I/O throttle** that models EC2-style burst-credit exhaustion — the
//!   paper's §5.1 notes that key-value-heavy experiments got throttled on EC2.
//!
//! Everything lives in one process; "brokers" are shared-memory structures
//! guarded by per-partition locks so many producer/consumer threads can run
//! concurrently, which is what the benchmark harness does.
//!
//! ## Quick example
//!
//! ```
//! use samzasql_kafka::{Broker, TopicConfig, Message, Producer, Consumer};
//!
//! let broker = Broker::new();
//! broker.create_topic("orders", TopicConfig::with_partitions(4)).unwrap();
//!
//! let producer = Producer::key_hash(broker.clone());
//! producer.send("orders", Message::keyed("k1", "hello")).unwrap();
//!
//! let mut consumer = Consumer::new(broker.clone());
//! consumer.assign("orders", 0..4);
//! consumer.seek_to_beginning();
//! let records = consumer.poll(16);
//! assert_eq!(records.len(), 1);
//! ```

pub mod broker;
pub mod consumer;
pub mod error;
pub mod fault;
pub mod group;
pub mod log;
pub mod message;
pub mod metrics;
pub mod offsets;
pub mod partitioner;
pub mod producer;
pub mod replication;
pub mod retry;
pub mod throttle;
pub mod topic;

pub use broker::Broker;
pub use consumer::{Consumer, ConsumerRecord};
pub use error::{FaultOp, KafkaError, Result};
pub use fault::{FaultInjector, FaultKind, FaultMetricsSnapshot, FaultSchedule, FaultSpec};
pub use group::{Assignor, GroupCoordinator, GroupMember};
pub use log::{FetchResult, PartitionLog, Record, SegmentConfig};
pub use message::{Message, TopicPartition};
pub use metrics::BrokerMetrics;
pub use partitioner::Partitioner;
pub use producer::{Producer, RecordMetadata};
pub use replication::{AckMode, IsrDelta, ReplicationConfig};
pub use retry::{splitmix64, Clock, Retrier, RetryMetrics, RetryPolicy, SystemClock, VirtualClock};
pub use throttle::IoThrottle;
pub use topic::{Topic, TopicConfig};
