//! I/O-rate throttling with burst credits.
//!
//! Models the EC2 gp2-style behaviour the paper ran into (§5.1): sustained
//! key-value-store traffic exhausts a burst-credit bucket after which the
//! effective I/O rate collapses to a low baseline, which is why the authors
//! moved the sliding-window experiments off EC2. The throttle is a token
//! bucket refilled at `sustained_bytes_per_sec` with an initial burst credit;
//! callers charge it bytes and receive the *delay* they should simulate (the
//! benchmark harness converts the delay into spin time, tests just assert on
//! it).
//!
//! Every charge also feeds obs instruments — an event counter, an
//! induced-delay histogram, and a credits gauge — so throttling is visible
//! in registry snapshots instead of silently discarded by callers that
//! ignore the returned debt (the broker produce path does exactly that).
//! Adopt them into a registry with [`IoThrottle::register_into`].

use parking_lot::Mutex;
use samzasql_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// Token-bucket throttle with burst credits.
#[derive(Debug)]
pub struct IoThrottle {
    inner: Mutex<ThrottleState>,
    sustained_bytes_per_sec: f64,
    burst_bytes: f64,
    /// Total `charge` calls.
    charges: Counter,
    /// Total bytes charged.
    bytes_charged: Counter,
    /// Charges that induced a nonzero stall (ran past the burst pool).
    throttle_events: Counter,
    /// Per-event induced delay, in microseconds.
    induced_delay_us: Histogram,
    /// Cumulative induced delay, in microseconds.
    induced_delay_us_total: Counter,
    /// Remaining burst credits, in bytes.
    credits_gauge: Gauge,
}

#[derive(Debug)]
struct ThrottleState {
    /// Remaining burst credit in bytes.
    credits: f64,
    /// Accumulated debt in seconds that callers must stall for.
    debt_secs: f64,
    /// Logical clock of the last refill, in seconds.
    last_refill: f64,
}

impl IoThrottle {
    /// Create a throttle with a sustained rate and a burst-credit pool.
    pub fn new(sustained_bytes_per_sec: u64, burst_bytes: u64) -> Self {
        let credits_gauge = Gauge::new();
        credits_gauge.set(burst_bytes as i64);
        IoThrottle {
            inner: Mutex::new(ThrottleState {
                credits: burst_bytes as f64,
                debt_secs: 0.0,
                last_refill: 0.0,
            }),
            sustained_bytes_per_sec: sustained_bytes_per_sec as f64,
            burst_bytes: burst_bytes as f64,
            charges: Counter::new(),
            bytes_charged: Counter::new(),
            throttle_events: Counter::new(),
            induced_delay_us: Histogram::new(),
            induced_delay_us_total: Counter::new(),
            credits_gauge,
        }
    }

    /// Publish the throttle's instruments into `registry` under
    /// `kafka.throttle.*` with the given identity labels.
    pub fn register_into(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        registry.adopt_counter("kafka.throttle.charges", labels, &self.charges);
        registry.adopt_counter("kafka.throttle.bytes_charged", labels, &self.bytes_charged);
        registry.adopt_counter("kafka.throttle.events", labels, &self.throttle_events);
        registry.adopt_histogram(
            "kafka.throttle.induced_delay_us",
            labels,
            &self.induced_delay_us,
        );
        registry.adopt_counter(
            "kafka.throttle.induced_delay_us_total",
            labels,
            &self.induced_delay_us_total,
        );
        registry.adopt_gauge("kafka.throttle.credits", labels, &self.credits_gauge);
    }

    /// Charge `bytes` of traffic at logical time `now_secs`. Returns the
    /// number of seconds of stall the caller has incurred so far (cumulative
    /// debt). While burst credits remain, the stall stays zero.
    pub fn charge(&self, bytes: u64, now_secs: f64) -> f64 {
        let mut s = self.inner.lock();
        // Refill credits for elapsed time, capped at the burst pool.
        let elapsed = (now_secs - s.last_refill).max(0.0);
        s.last_refill = now_secs;
        s.credits = (s.credits + elapsed * self.sustained_bytes_per_sec).min(self.burst_bytes);
        let b = bytes as f64;
        if s.credits >= b {
            s.credits -= b;
        } else {
            let uncovered = b - s.credits;
            s.credits = 0.0;
            let induced_secs = uncovered / self.sustained_bytes_per_sec;
            s.debt_secs += induced_secs;
            let induced_us = (induced_secs * 1e6) as u64;
            self.throttle_events.inc();
            self.induced_delay_us.record(induced_us);
            self.induced_delay_us_total.add(induced_us);
        }
        self.charges.inc();
        self.bytes_charged.add(bytes);
        self.credits_gauge.set(s.credits as i64);
        s.debt_secs
    }

    /// Remaining burst credits in bytes.
    pub fn credits(&self) -> u64 {
        self.inner.lock().credits as u64
    }

    /// True once the burst pool has been exhausted at least to zero.
    pub fn is_throttling(&self) -> bool {
        let s = self.inner.lock();
        s.debt_secs > 0.0
    }

    /// Charges that induced a nonzero stall.
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events.get()
    }

    /// Cumulative induced delay in microseconds.
    pub fn induced_delay_us_total(&self) -> u64 {
        self.induced_delay_us_total.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_credits_absorb_initial_traffic() {
        let t = IoThrottle::new(1000, 10_000);
        assert_eq!(t.charge(5000, 0.0), 0.0);
        assert!(!t.is_throttling());
        assert_eq!(t.credits(), 5000);
        assert_eq!(t.throttle_events(), 0);
    }

    #[test]
    fn exhausted_credits_accumulate_debt() {
        let t = IoThrottle::new(1000, 1000);
        assert_eq!(t.charge(1000, 0.0), 0.0);
        let debt = t.charge(2000, 0.0);
        assert!(
            (debt - 2.0).abs() < 1e-9,
            "2000 uncovered bytes at 1000 B/s = 2 s, got {debt}"
        );
        assert!(t.is_throttling());
        assert_eq!(t.throttle_events(), 1);
        assert_eq!(t.induced_delay_us_total(), 2_000_000);
    }

    #[test]
    fn credits_refill_over_time_up_to_burst() {
        let t = IoThrottle::new(1000, 2000);
        t.charge(2000, 0.0); // drain
        t.charge(0, 1.0); // refill 1s * 1000 B/s
        assert_eq!(t.credits(), 1000);
        t.charge(0, 100.0); // refill far beyond pool; capped
        assert_eq!(t.credits(), 2000);
    }

    #[test]
    fn registered_instruments_observe_throttling() {
        let t = IoThrottle::new(1000, 1000);
        let registry = MetricsRegistry::new();
        t.register_into(&registry, &[]);
        t.charge(3000, 0.0);
        let snap = registry.snapshot_prefix("kafka.throttle.");
        assert_eq!(snap.counter("kafka.throttle.charges", &[]), Some(1));
        assert_eq!(
            snap.counter("kafka.throttle.bytes_charged", &[]),
            Some(3000)
        );
        assert_eq!(snap.counter("kafka.throttle.events", &[]), Some(1));
        // 2000 uncovered bytes at 1000 B/s = 2 s = 2_000_000 us.
        assert_eq!(
            snap.counter("kafka.throttle.induced_delay_us_total", &[]),
            Some(2_000_000)
        );
        let credits = snap
            .entries
            .iter()
            .find(|e| e.name == "kafka.throttle.credits");
        assert!(matches!(
            credits.map(|e| &e.value),
            Some(samzasql_obs::MetricValue::Gauge(0))
        ));
    }
}
