//! I/O-rate throttling with burst credits.
//!
//! Models the EC2 gp2-style behaviour the paper ran into (§5.1): sustained
//! key-value-store traffic exhausts a burst-credit bucket after which the
//! effective I/O rate collapses to a low baseline, which is why the authors
//! moved the sliding-window experiments off EC2. The throttle is a token
//! bucket refilled at `sustained_bytes_per_sec` with an initial burst credit;
//! callers charge it bytes and receive the *delay* they should simulate (the
//! benchmark harness converts the delay into spin time, tests just assert on
//! it).

use parking_lot::Mutex;

/// Token-bucket throttle with burst credits.
#[derive(Debug)]
pub struct IoThrottle {
    inner: Mutex<ThrottleState>,
    sustained_bytes_per_sec: f64,
    burst_bytes: f64,
}

#[derive(Debug)]
struct ThrottleState {
    /// Remaining burst credit in bytes.
    credits: f64,
    /// Accumulated debt in seconds that callers must stall for.
    debt_secs: f64,
    /// Logical clock of the last refill, in seconds.
    last_refill: f64,
}

impl IoThrottle {
    /// Create a throttle with a sustained rate and a burst-credit pool.
    pub fn new(sustained_bytes_per_sec: u64, burst_bytes: u64) -> Self {
        IoThrottle {
            inner: Mutex::new(ThrottleState {
                credits: burst_bytes as f64,
                debt_secs: 0.0,
                last_refill: 0.0,
            }),
            sustained_bytes_per_sec: sustained_bytes_per_sec as f64,
            burst_bytes: burst_bytes as f64,
        }
    }

    /// Charge `bytes` of traffic at logical time `now_secs`. Returns the
    /// number of seconds of stall the caller has incurred so far (cumulative
    /// debt). While burst credits remain, the stall stays zero.
    pub fn charge(&self, bytes: u64, now_secs: f64) -> f64 {
        let mut s = self.inner.lock();
        // Refill credits for elapsed time, capped at the burst pool.
        let elapsed = (now_secs - s.last_refill).max(0.0);
        s.last_refill = now_secs;
        s.credits = (s.credits + elapsed * self.sustained_bytes_per_sec).min(self.burst_bytes);
        let b = bytes as f64;
        if s.credits >= b {
            s.credits -= b;
        } else {
            let uncovered = b - s.credits;
            s.credits = 0.0;
            s.debt_secs += uncovered / self.sustained_bytes_per_sec;
        }
        s.debt_secs
    }

    /// Remaining burst credits in bytes.
    pub fn credits(&self) -> u64 {
        self.inner.lock().credits as u64
    }

    /// True once the burst pool has been exhausted at least to zero.
    pub fn is_throttling(&self) -> bool {
        let s = self.inner.lock();
        s.debt_secs > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_credits_absorb_initial_traffic() {
        let t = IoThrottle::new(1000, 10_000);
        assert_eq!(t.charge(5000, 0.0), 0.0);
        assert!(!t.is_throttling());
        assert_eq!(t.credits(), 5000);
    }

    #[test]
    fn exhausted_credits_accumulate_debt() {
        let t = IoThrottle::new(1000, 1000);
        assert_eq!(t.charge(1000, 0.0), 0.0);
        let debt = t.charge(2000, 0.0);
        assert!(
            (debt - 2.0).abs() < 1e-9,
            "2000 uncovered bytes at 1000 B/s = 2 s, got {debt}"
        );
        assert!(t.is_throttling());
    }

    #[test]
    fn credits_refill_over_time_up_to_burst() {
        let t = IoThrottle::new(1000, 2000);
        t.charge(2000, 0.0); // drain
        t.charge(0, 1.0); // refill 1s * 1000 B/s
        assert_eq!(t.credits(), 1000);
        t.charge(0, 100.0); // refill far beyond pool; capped
        assert_eq!(t.credits(), 2000);
    }
}
