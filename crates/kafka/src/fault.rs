//! Seeded broker fault injection.
//!
//! A [`FaultInjector`] installed on a [`Broker`](crate::Broker) intercepts
//! every produce and fetch *before* the log is touched and, per policy,
//! turns it into a transient error, an unavailability window, or a latency
//! spike. Fail-fast interception means injected produce failures never
//! partially append — the retry loops above never duplicate records because
//! of the injector itself.
//!
//! **Determinism.** Decisions are a pure function of
//! `(seed, topic, partition, op, per-partition op index)` — no shared RNG
//! state whose consumption order could vary across thread interleavings. Two
//! runs that issue the same operation sequence against a partition get the
//! identical fault schedule, which is what makes chaos failures replayable
//! from a seed.

use crate::error::{FaultOp, KafkaError, Result};
use crate::message::TopicPartition;
use crate::retry::splitmix64;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When a fault spec fires, relative to the per-(topic, partition, op)
/// operation index (0-based).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSchedule {
    /// Fire with probability `p` per operation (hash-derived, seeded).
    Probability(f64),
    /// Fire on every `n`th operation (indices n-1, 2n-1, ...).
    EveryNth(u64),
    /// Fire for every operation with index in `[from, from + count)`.
    Window { from: u64, count: u64 },
    /// Fire on every operation.
    Always,
}

impl FaultSchedule {
    fn fires(&self, seed: u64, key_hash: u64, index: u64) -> bool {
        match self {
            FaultSchedule::Probability(p) => {
                if *p <= 0.0 {
                    return false;
                }
                if *p >= 1.0 {
                    return true;
                }
                let h = splitmix64(seed ^ key_hash ^ index.wrapping_mul(0x2545_f491_4f6c_dd1d));
                (h as f64 / u64::MAX as f64) < *p
            }
            FaultSchedule::EveryNth(n) => *n > 0 && (index + 1).is_multiple_of(*n),
            FaultSchedule::Window { from, count } => index >= *from && index < from + count,
            FaultSchedule::Always => true,
        }
    }
}

/// What happens when a spec fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Return [`KafkaError::InjectedFault`] (retriable).
    TransientError,
    /// Return [`KafkaError::PartitionUnavailable`] (retriable) — models a
    /// partition whose replicas are all offline for the schedule's duration.
    Unavailable,
    /// Record `ms` of injected latency (and really sleep when the injector
    /// is configured with [`FaultInjector::real_sleeps`]); the operation
    /// then proceeds normally.
    Latency { ms: u64 },
}

/// One injection rule: which operations it applies to and what it does.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Restrict to one topic (`None` = all topics).
    pub topic: Option<String>,
    /// Restrict to one partition (`None` = all partitions).
    pub partition: Option<u32>,
    /// Restrict to one operation (`None` = produce and fetch).
    pub op: Option<FaultOp>,
    pub kind: FaultKind,
    pub schedule: FaultSchedule,
}

impl FaultSpec {
    /// A spec applying to every topic, partition, and operation.
    pub fn any(kind: FaultKind, schedule: FaultSchedule) -> Self {
        FaultSpec {
            topic: None,
            partition: None,
            op: None,
            kind,
            schedule,
        }
    }

    /// Builder-style topic restriction.
    pub fn on_topic(mut self, topic: impl Into<String>) -> Self {
        self.topic = Some(topic.into());
        self
    }

    /// Builder-style partition restriction.
    pub fn on_partition(mut self, partition: u32) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Builder-style operation restriction.
    pub fn on_op(mut self, op: FaultOp) -> Self {
        self.op = Some(op);
        self
    }

    fn matches(&self, op: FaultOp, topic: &str, partition: u32) -> bool {
        self.op.is_none_or(|o| o == op)
            && self.topic.as_deref().is_none_or(|t| t == topic)
            && self.partition.is_none_or(|p| p == partition)
    }
}

/// Counters describing injector activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultMetricsSnapshot {
    pub injected_errors: u64,
    pub unavailable_hits: u64,
    pub latency_events: u64,
    pub injected_latency_ms: u64,
}

#[derive(Debug, Default)]
struct FaultMetrics {
    injected_errors: AtomicU64,
    unavailable_hits: AtomicU64,
    latency_events: AtomicU64,
    injected_latency_ms: AtomicU64,
}

fn fnv1a_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The injector itself. Install on a broker with
/// [`Broker::set_fault_injector`](crate::Broker::set_fault_injector); specs
/// can be pushed while traffic is flowing (chaos events do exactly that).
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    specs: Mutex<Vec<FaultSpec>>,
    /// Per-(topic-partition, op) operation indices, advanced on every
    /// intercepted call whether or not a fault fires.
    counters: Mutex<HashMap<(TopicPartition, FaultOp), u64>>,
    metrics: FaultMetrics,
    real_sleeps: bool,
}

impl FaultInjector {
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            specs: Mutex::new(Vec::new()),
            counters: Mutex::new(HashMap::new()),
            metrics: FaultMetrics::default(),
            real_sleeps: false,
        }
    }

    /// Shared handle with the given seed and specs.
    pub fn with_specs(seed: u64, specs: Vec<FaultSpec>) -> Arc<Self> {
        let inj = FaultInjector::new(seed);
        *inj.specs.lock() = specs;
        Arc::new(inj)
    }

    /// Make latency faults really sleep (off by default: latency is
    /// recorded, not paid, so chaos tests stay fast).
    pub fn real_sleeps(mut self, on: bool) -> Self {
        self.real_sleeps = on;
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Add a spec while traffic is flowing.
    pub fn push_spec(&self, spec: FaultSpec) {
        self.specs.lock().push(spec);
    }

    /// Remove every spec (the injector becomes a transparent pass-through).
    pub fn clear_specs(&self) {
        self.specs.lock().clear();
    }

    /// Operations intercepted so far for `(topic, partition, op)` — chaos
    /// events use this to open [`FaultSchedule::Window`]s "from now on".
    pub fn op_count(&self, topic: &str, partition: u32, op: FaultOp) -> u64 {
        self.counters
            .lock()
            .get(&(TopicPartition::new(topic, partition), op))
            .copied()
            .unwrap_or(0)
    }

    pub fn metrics(&self) -> FaultMetricsSnapshot {
        FaultMetricsSnapshot {
            injected_errors: self.metrics.injected_errors.load(Ordering::Relaxed),
            unavailable_hits: self.metrics.unavailable_hits.load(Ordering::Relaxed),
            latency_events: self.metrics.latency_events.load(Ordering::Relaxed),
            injected_latency_ms: self.metrics.injected_latency_ms.load(Ordering::Relaxed),
        }
    }

    /// Intercept one operation: advance the per-partition index, evaluate
    /// specs in order, and return the first firing error (latency specs
    /// record and fall through). Called by the broker before touching the
    /// log.
    pub fn intercept(&self, op: FaultOp, topic: &str, partition: u32) -> Result<()> {
        let index = {
            let mut counters = self.counters.lock();
            let c = counters
                .entry((TopicPartition::new(topic, partition), op))
                .or_insert(0);
            let i = *c;
            *c += 1;
            i
        };
        let key_hash = fnv1a_str(topic)
            ^ (partition as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ match op {
                FaultOp::Produce => 0x50,
                FaultOp::Fetch => 0xf0,
            };
        let specs = self.specs.lock().clone();
        for spec in &specs {
            if !spec.matches(op, topic, partition) {
                continue;
            }
            if !spec.schedule.fires(self.seed, key_hash, index) {
                continue;
            }
            match &spec.kind {
                FaultKind::TransientError => {
                    self.metrics.injected_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(KafkaError::InjectedFault {
                        op,
                        topic: topic.to_string(),
                        partition,
                    });
                }
                FaultKind::Unavailable => {
                    self.metrics
                        .unavailable_hits
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(KafkaError::PartitionUnavailable {
                        topic: topic.to_string(),
                        partition,
                    });
                }
                FaultKind::Latency { ms } => {
                    self.metrics.latency_events.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .injected_latency_ms
                        .fetch_add(*ms, Ordering::Relaxed);
                    if self.real_sleeps {
                        std::thread::sleep(std::time::Duration::from_millis(*ms));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_nth_fires_on_schedule() {
        let inj = FaultInjector::with_specs(
            1,
            vec![FaultSpec::any(
                FaultKind::TransientError,
                FaultSchedule::EveryNth(3),
            )],
        );
        let outcomes: Vec<bool> = (0..9)
            .map(|_| inj.intercept(FaultOp::Produce, "t", 0).is_err())
            .collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(inj.metrics().injected_errors, 3);
    }

    #[test]
    fn window_bounds_unavailability() {
        let inj = FaultInjector::with_specs(
            1,
            vec![FaultSpec::any(
                FaultKind::Unavailable,
                FaultSchedule::Window { from: 2, count: 3 },
            )],
        );
        let outcomes: Vec<bool> = (0..8)
            .map(|_| inj.intercept(FaultOp::Fetch, "t", 0).is_err())
            .collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, true, true, false, false, false]
        );
        assert_eq!(inj.metrics().unavailable_hits, 3);
    }

    #[test]
    fn probability_decisions_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::with_specs(
                seed,
                vec![FaultSpec::any(
                    FaultKind::TransientError,
                    FaultSchedule::Probability(0.5),
                )],
            );
            (0..64)
                .map(|_| inj.intercept(FaultOp::Produce, "orders", 3).is_err())
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
        let fired = run(7).iter().filter(|b| **b).count();
        assert!((10..=54).contains(&fired), "roughly half fire: {fired}");
    }

    #[test]
    fn specs_scope_by_topic_partition_and_op() {
        let inj = FaultInjector::with_specs(
            1,
            vec![
                FaultSpec::any(FaultKind::TransientError, FaultSchedule::Always)
                    .on_topic("orders")
                    .on_partition(1)
                    .on_op(FaultOp::Produce),
            ],
        );
        assert!(inj.intercept(FaultOp::Produce, "orders", 1).is_err());
        assert!(inj.intercept(FaultOp::Produce, "orders", 0).is_ok());
        assert!(inj.intercept(FaultOp::Produce, "other", 1).is_ok());
        assert!(inj.intercept(FaultOp::Fetch, "orders", 1).is_ok());
    }

    #[test]
    fn latency_records_and_passes_through() {
        let inj = FaultInjector::with_specs(
            1,
            vec![FaultSpec::any(
                FaultKind::Latency { ms: 25 },
                FaultSchedule::EveryNth(2),
            )],
        );
        for _ in 0..4 {
            assert!(inj.intercept(FaultOp::Produce, "t", 0).is_ok());
        }
        let m = inj.metrics();
        assert_eq!(m.latency_events, 2);
        assert_eq!(m.injected_latency_ms, 50);
    }

    #[test]
    fn op_counts_advance_per_partition() {
        let inj = FaultInjector::new(1);
        inj.intercept(FaultOp::Produce, "t", 0).unwrap();
        inj.intercept(FaultOp::Produce, "t", 0).unwrap();
        inj.intercept(FaultOp::Fetch, "t", 0).unwrap();
        assert_eq!(inj.op_count("t", 0, FaultOp::Produce), 2);
        assert_eq!(inj.op_count("t", 0, FaultOp::Fetch), 1);
        assert_eq!(inj.op_count("t", 1, FaultOp::Produce), 0);
    }
}
