//! Topics: named collections of partitions.

use crate::log::{PartitionLog, SegmentConfig};
use crate::replication::ReplicationConfig;
use parking_lot::RwLock;

/// Creation-time configuration of a topic.
#[derive(Debug, Clone)]
pub struct TopicConfig {
    /// Number of partitions. Fixed at creation, like Kafka prior to
    /// partition expansion (the paper's benchmarks use a constant 32).
    pub partitions: u32,
    /// Log segmentation and retention settings applied to every partition.
    pub segment: SegmentConfig,
    /// Replication simulation settings.
    pub replication: ReplicationConfig,
}

impl TopicConfig {
    /// A topic with `partitions` partitions and default log settings.
    pub fn with_partitions(partitions: u32) -> Self {
        TopicConfig {
            partitions,
            segment: SegmentConfig::default(),
            replication: ReplicationConfig::default(),
        }
    }

    /// Builder-style override of segment configuration.
    pub fn segment(mut self, segment: SegmentConfig) -> Self {
        self.segment = segment;
        self
    }

    /// Builder-style override of replication configuration.
    pub fn replication(mut self, replication: ReplicationConfig) -> Self {
        self.replication = replication;
        self
    }
}

impl Default for TopicConfig {
    fn default() -> Self {
        TopicConfig::with_partitions(1)
    }
}

/// A topic: one lock-guarded [`PartitionLog`] per partition so concurrent
/// producers/consumers on different partitions never contend.
pub struct Topic {
    pub name: String,
    pub config: TopicConfig,
    partitions: Vec<RwLock<PartitionLog>>,
}

impl Topic {
    pub fn new(name: impl Into<String>, config: TopicConfig) -> Self {
        let name = name.into();
        let partitions = (0..config.partitions)
            .map(|p| RwLock::new(PartitionLog::new(name.clone(), p, config.segment.clone())))
            .collect();
        Topic {
            name,
            config,
            partitions,
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// Access one partition's log, if the index is valid.
    pub fn partition(&self, p: u32) -> Option<&RwLock<PartitionLog>> {
        self.partitions.get(p as usize)
    }
}

impl std::fmt::Debug for Topic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topic")
            .field("name", &self.name)
            .field("partitions", &self.partitions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[test]
    fn topic_creates_requested_partitions() {
        let t = Topic::new("orders", TopicConfig::with_partitions(32));
        assert_eq!(t.partition_count(), 32);
        assert!(t.partition(31).is_some());
        assert!(t.partition(32).is_none());
    }

    #[test]
    fn partitions_are_independent() {
        let t = Topic::new("orders", TopicConfig::with_partitions(2));
        t.partition(0).unwrap().write().append(Message::new("a"));
        assert_eq!(t.partition(0).unwrap().read().end_offset(), 1);
        assert_eq!(t.partition(1).unwrap().read().end_offset(), 0);
    }
}
