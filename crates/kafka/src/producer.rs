//! Producer client.

use crate::broker::Broker;
use crate::error::Result;
use crate::message::Message;
use crate::partitioner::Partitioner;
use crate::replication::AckMode;

/// Metadata returned for each produced record, like Kafka's `RecordMetadata`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMetadata {
    pub partition: u32,
    pub offset: u64,
}

/// A producer bound to one broker with a partitioning strategy and ack mode.
#[derive(Debug)]
pub struct Producer {
    broker: Broker,
    partitioner: Partitioner,
    acks: AckMode,
}

impl Producer {
    /// Producer using key-hash partitioning (the Kafka default).
    pub fn key_hash(broker: Broker) -> Self {
        Producer {
            broker,
            partitioner: Partitioner::key_hash(),
            acks: AckMode::Leader,
        }
    }

    /// Producer using round-robin partitioning.
    pub fn round_robin(broker: Broker) -> Self {
        Producer {
            broker,
            partitioner: Partitioner::round_robin(),
            acks: AckMode::Leader,
        }
    }

    /// Producer with an explicit partitioner.
    pub fn with_partitioner(broker: Broker, partitioner: Partitioner) -> Self {
        Producer {
            broker,
            partitioner,
            acks: AckMode::Leader,
        }
    }

    /// Override the acknowledgement mode (builder style).
    pub fn acks(mut self, acks: AckMode) -> Self {
        self.acks = acks;
        self
    }

    /// Send a message; the partitioner picks the partition.
    pub fn send(&self, topic: &str, message: Message) -> Result<RecordMetadata> {
        let partitions = self.broker.partition_count(topic)?;
        let partition = self.partitioner.partition(&message, partitions);
        let offset = self
            .broker
            .produce_with_acks(topic, partition, message, self.acks)?;
        Ok(RecordMetadata { partition, offset })
    }

    /// Send directly to an explicit partition, bypassing the partitioner.
    pub fn send_to(&self, topic: &str, partition: u32, message: Message) -> Result<RecordMetadata> {
        let offset = self
            .broker
            .produce_with_acks(topic, partition, message, self.acks)?;
        Ok(RecordMetadata { partition, offset })
    }

    /// The broker this producer writes to.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicConfig;

    #[test]
    fn keyed_sends_stick_to_one_partition() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(8))
            .unwrap();
        let p = Producer::key_hash(b.clone());
        let first = p.send("t", Message::keyed("k", "1")).unwrap().partition;
        for i in 0..20 {
            let md = p.send("t", Message::keyed("k", format!("{i}"))).unwrap();
            assert_eq!(md.partition, first);
        }
        assert_eq!(b.end_offset("t", first).unwrap(), 21);
    }

    #[test]
    fn send_to_overrides_partitioner() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(4))
            .unwrap();
        let p = Producer::round_robin(b.clone());
        let md = p.send_to("t", 3, Message::new("x")).unwrap();
        assert_eq!(
            md,
            RecordMetadata {
                partition: 3,
                offset: 0
            }
        );
    }

    #[test]
    fn offsets_increase_per_partition() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(2))
            .unwrap();
        let p = Producer::with_partitioner(b, Partitioner::Fixed(1));
        let offs: Vec<u64> = (0..3)
            .map(|_| p.send("t", Message::new("x")).unwrap().offset)
            .collect();
        assert_eq!(offs, vec![0, 1, 2]);
    }
}
