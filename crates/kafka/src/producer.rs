//! Producer client.

use crate::broker::Broker;
use crate::error::Result;
use crate::message::Message;
use crate::partitioner::Partitioner;
use crate::replication::AckMode;
use crate::retry::Retrier;

/// Metadata returned for each produced record, like Kafka's `RecordMetadata`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMetadata {
    pub partition: u32,
    pub offset: u64,
}

/// A producer bound to one broker with a partitioning strategy, ack mode,
/// and retry policy. Transient broker errors (injected faults, leader
/// elections, ISR shortfalls) are retried with backoff before surfacing;
/// injected errors fire before the log append, so a retried send never
/// duplicates a record.
#[derive(Debug)]
pub struct Producer {
    broker: Broker,
    partitioner: Partitioner,
    acks: AckMode,
    retrier: Retrier,
}

impl Producer {
    /// Producer using key-hash partitioning (the Kafka default).
    pub fn key_hash(broker: Broker) -> Self {
        Producer {
            broker,
            partitioner: Partitioner::key_hash(),
            acks: AckMode::Leader,
            retrier: Retrier::default(),
        }
    }

    /// Producer using round-robin partitioning.
    pub fn round_robin(broker: Broker) -> Self {
        Producer {
            broker,
            partitioner: Partitioner::round_robin(),
            acks: AckMode::Leader,
            retrier: Retrier::default(),
        }
    }

    /// Producer with an explicit partitioner.
    pub fn with_partitioner(broker: Broker, partitioner: Partitioner) -> Self {
        Producer {
            broker,
            partitioner,
            acks: AckMode::Leader,
            retrier: Retrier::default(),
        }
    }

    /// Override the acknowledgement mode (builder style).
    pub fn acks(mut self, acks: AckMode) -> Self {
        self.acks = acks;
        self
    }

    /// Override the retrier (builder style). Use
    /// [`Retrier::disabled`] to surface the first error verbatim.
    pub fn retry(mut self, retrier: Retrier) -> Self {
        self.retrier = retrier;
        self
    }

    /// This producer's retrier (its metrics count retries/giveups).
    pub fn retrier(&self) -> &Retrier {
        &self.retrier
    }

    /// Send a message; the partitioner picks the partition.
    pub fn send(&self, topic: &str, message: Message) -> Result<RecordMetadata> {
        let partitions = self.broker.partition_count(topic)?;
        let partition = self.partitioner.partition(&message, partitions);
        self.send_to(topic, partition, message)
    }

    /// Send directly to an explicit partition, bypassing the partitioner.
    pub fn send_to(&self, topic: &str, partition: u32, message: Message) -> Result<RecordMetadata> {
        // Message payloads are refcounted, so the per-attempt clone is cheap.
        let offset = self.retrier.run(|| {
            self.broker
                .produce_with_acks(topic, partition, message.clone(), self.acks)
        })?;
        Ok(RecordMetadata { partition, offset })
    }

    /// Send a batch to one topic: the partitioner assigns each message a
    /// partition, then every partition's run is appended under a single
    /// log-lock acquisition ([`Broker::produce_batch`]). Returns per-record
    /// metadata in input order.
    pub fn send_batch(&self, topic: &str, messages: Vec<Message>) -> Result<Vec<RecordMetadata>> {
        let partitions = self.broker.partition_count(topic)?;
        let total = messages.len();
        let mut groups: std::collections::BTreeMap<u32, (Vec<usize>, Vec<Message>)> =
            std::collections::BTreeMap::new();
        for (i, message) in messages.into_iter().enumerate() {
            let p = self.partitioner.partition(&message, partitions);
            let group = groups.entry(p).or_default();
            group.0.push(i);
            group.1.push(message);
        }
        let mut metadata = vec![
            RecordMetadata {
                partition: 0,
                offset: 0
            };
            total
        ];
        for (partition, (indices, msgs)) in groups {
            let offsets = self.retrier.run(|| {
                self.broker
                    .produce_batch(topic, partition, msgs.clone(), self.acks)
            })?;
            for (i, offset) in indices.into_iter().zip(offsets) {
                metadata[i] = RecordMetadata { partition, offset };
            }
        }
        Ok(metadata)
    }

    /// Send a batch directly to an explicit partition under one log-lock
    /// acquisition, bypassing the partitioner.
    pub fn send_batch_to(
        &self,
        topic: &str,
        partition: u32,
        messages: Vec<Message>,
    ) -> Result<Vec<RecordMetadata>> {
        let offsets = self.retrier.run(|| {
            self.broker
                .produce_batch(topic, partition, messages.clone(), self.acks)
        })?;
        Ok(offsets
            .into_iter()
            .map(|offset| RecordMetadata { partition, offset })
            .collect())
    }

    /// The broker this producer writes to.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicConfig;

    #[test]
    fn keyed_sends_stick_to_one_partition() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(8))
            .unwrap();
        let p = Producer::key_hash(b.clone());
        let first = p.send("t", Message::keyed("k", "1")).unwrap().partition;
        for i in 0..20 {
            let md = p.send("t", Message::keyed("k", format!("{i}"))).unwrap();
            assert_eq!(md.partition, first);
        }
        assert_eq!(b.end_offset("t", first).unwrap(), 21);
    }

    #[test]
    fn send_to_overrides_partitioner() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(4))
            .unwrap();
        let p = Producer::round_robin(b.clone());
        let md = p.send_to("t", 3, Message::new("x")).unwrap();
        assert_eq!(
            md,
            RecordMetadata {
                partition: 3,
                offset: 0
            }
        );
    }

    #[test]
    fn send_batch_returns_metadata_in_input_order() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(4))
            .unwrap();
        let p = Producer::key_hash(b.clone());
        let messages: Vec<Message> = (0..40)
            .map(|i| Message::keyed(format!("k{}", i % 5), format!("{i}")))
            .collect();
        let singles: Vec<RecordMetadata> = messages
            .iter()
            .map(|m| {
                let partitions = b.partition_count("t").unwrap();
                RecordMetadata {
                    partition: Partitioner::key_hash().partition(m, partitions),
                    offset: 0,
                }
            })
            .collect();
        let metadata = p.send_batch("t", messages).unwrap();
        assert_eq!(metadata.len(), 40);
        // Partition assignment matches the per-message partitioner, and
        // offsets increase within each partition in input order.
        let mut next: std::collections::HashMap<u32, u64> = Default::default();
        for (md, single) in metadata.iter().zip(&singles) {
            assert_eq!(md.partition, single.partition);
            let expect = next.entry(md.partition).or_insert(0);
            assert_eq!(md.offset, *expect);
            *expect += 1;
        }
    }

    #[test]
    fn send_batch_to_targets_one_partition() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(4))
            .unwrap();
        let p = Producer::round_robin(b.clone());
        let metadata = p
            .send_batch_to("t", 2, vec![Message::new("x"), Message::new("y")])
            .unwrap();
        assert_eq!(
            metadata,
            vec![
                RecordMetadata {
                    partition: 2,
                    offset: 0
                },
                RecordMetadata {
                    partition: 2,
                    offset: 1
                }
            ]
        );
        assert_eq!(b.end_offset("t", 2).unwrap(), 2);
    }

    #[test]
    fn send_rides_out_injected_transient_faults() {
        use crate::error::{FaultOp, KafkaError};
        use crate::fault::{FaultInjector, FaultKind, FaultSchedule, FaultSpec};

        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(1))
            .unwrap();
        // Every produce fails twice out of three (indices 0,1 fail; 2 ok...).
        b.set_fault_injector(Some(FaultInjector::with_specs(
            9,
            vec![FaultSpec::any(
                FaultKind::TransientError,
                FaultSchedule::Window { from: 0, count: 2 },
            )
            .on_op(FaultOp::Produce)],
        )));
        let p = Producer::key_hash(b.clone());
        let md = p.send("t", Message::new("x")).unwrap();
        assert_eq!(md.offset, 0, "no duplicate appends across retries");
        assert_eq!(b.end_offset("t", 0).unwrap(), 1);
        assert_eq!(p.retrier().metrics().retries(), 2);
        assert_eq!(b.metrics().faults_injected(), 2);

        // With retries disabled the injected error surfaces verbatim.
        b.set_fault_injector(Some(FaultInjector::with_specs(
            9,
            vec![FaultSpec::any(
                FaultKind::TransientError,
                FaultSchedule::Always,
            )],
        )));
        let p = Producer::key_hash(b).retry(Retrier::disabled());
        assert!(matches!(
            p.send("t", Message::new("y")),
            Err(KafkaError::InjectedFault { .. })
        ));
    }

    #[test]
    fn offsets_increase_per_partition() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(2))
            .unwrap();
        let p = Producer::with_partitioner(b, Partitioner::Fixed(1));
        let offs: Vec<u64> = (0..3)
            .map(|_| p.send("t", Message::new("x")).unwrap().offset)
            .collect();
        assert_eq!(offs, vec![0, 1, 2]);
    }
}
