//! Poll-based consumer client.

use crate::broker::Broker;
use crate::error::{KafkaError, Result};
use crate::log::Record;
use crate::message::{Message, TopicPartition};
use crate::retry::Retrier;
use std::collections::BTreeMap;
use std::ops::Range;

/// A record delivered to a consumer, tagged with its origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsumerRecord {
    pub topic: String,
    pub partition: u32,
    pub offset: u64,
    pub timestamp: i64,
    pub message: Message,
}

/// A manual-assignment consumer: the caller assigns topic-partitions and the
/// consumer round-robins fetches across them, tracking a position per
/// partition. Group-managed assignment lives in [`crate::group`]; Samza uses
/// manual assignment because its job coordinator owns partition placement.
pub struct Consumer {
    broker: Broker,
    /// Position (next offset to fetch) per assigned partition, ordered for
    /// deterministic polling.
    positions: BTreeMap<TopicPartition, u64>,
    /// Rotation cursor so successive polls don't starve later partitions.
    rotation: usize,
    /// Retry policy applied to each partition fetch inside `poll`.
    retrier: Retrier,
}

impl Consumer {
    pub fn new(broker: Broker) -> Self {
        Consumer {
            broker,
            positions: BTreeMap::new(),
            rotation: 0,
            retrier: Retrier::default(),
        }
    }

    /// Override the retrier (builder style).
    pub fn retry(mut self, retrier: Retrier) -> Self {
        self.retrier = retrier;
        self
    }

    /// This consumer's retrier (its metrics count retries/giveups).
    pub fn retrier(&self) -> &Retrier {
        &self.retrier
    }

    /// Assign a range of partitions of `topic`, starting at each partition's
    /// current log start offset.
    pub fn assign(&mut self, topic: &str, partitions: Range<u32>) {
        for p in partitions {
            let start = self.broker.start_offset(topic, p).unwrap_or(0);
            self.positions.insert(TopicPartition::new(topic, p), start);
        }
    }

    /// Assign one partition at an explicit starting offset.
    pub fn assign_at(&mut self, tp: TopicPartition, offset: u64) {
        self.positions.insert(tp, offset);
    }

    /// Currently assigned partitions, in order.
    pub fn assignment(&self) -> Vec<TopicPartition> {
        self.positions.keys().cloned().collect()
    }

    /// Current position (next offset) of a partition.
    pub fn position(&self, tp: &TopicPartition) -> Option<u64> {
        self.positions.get(tp).copied()
    }

    /// Move a partition's position.
    pub fn seek(&mut self, tp: &TopicPartition, offset: u64) -> Result<()> {
        match self.positions.get_mut(tp) {
            Some(pos) => {
                *pos = offset;
                Ok(())
            }
            None => Err(KafkaError::UnknownPartition {
                topic: tp.topic.clone(),
                partition: tp.partition,
            }),
        }
    }

    /// Rewind every assigned partition to its log start offset.
    pub fn seek_to_beginning(&mut self) {
        for (tp, pos) in self.positions.iter_mut() {
            *pos = self
                .broker
                .start_offset(&tp.topic, tp.partition)
                .unwrap_or(0);
        }
    }

    /// Fast-forward every assigned partition to its log end offset.
    pub fn seek_to_end(&mut self) {
        for (tp, pos) in self.positions.iter_mut() {
            *pos = self
                .broker
                .end_offset(&tp.topic, tp.partition)
                .unwrap_or(*pos);
        }
    }

    /// Seek every assigned partition to the earliest record with
    /// `timestamp >= ts` (Kafka `offsetsForTimes` + seek).
    pub fn seek_to_timestamp(&mut self, ts: i64) {
        for (tp, pos) in self.positions.iter_mut() {
            if let Some(topic) = self.broker.topic(&tp.topic) {
                if let Some(log) = topic.partition(tp.partition) {
                    *pos = log.read().offset_for_timestamp(ts);
                }
            }
        }
    }

    /// Poll up to `max_records` across assigned partitions. Partitions are
    /// visited in rotating order; each successful fetch advances that
    /// partition's position past the records returned.
    pub fn poll(&mut self, max_records: usize) -> Vec<ConsumerRecord> {
        let tps: Vec<TopicPartition> = self.positions.keys().cloned().collect();
        if tps.is_empty() || max_records == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let n = tps.len();
        for i in 0..n {
            if out.len() >= max_records {
                break;
            }
            let tp = &tps[(self.rotation + i) % n];
            let pos = *self
                .positions
                .get(tp)
                .expect("assigned partition has a position");
            let budget = max_records - out.len();
            let attempt = self
                .retrier
                .run(|| self.broker.fetch(&tp.topic, tp.partition, pos, budget));
            let fetched = match attempt {
                Ok(f) => f,
                Err(KafkaError::OffsetOutOfRange { start, .. }) => {
                    // Retention ran past us: jump to the earliest retained
                    // record, like Kafka's `auto.offset.reset=earliest`.
                    self.positions.insert(tp.clone(), start);
                    continue;
                }
                Err(_) => continue,
            };
            if let Some(last) = fetched.records.last() {
                self.positions.insert(tp.clone(), last.offset + 1);
            }
            out.extend(fetched.records.into_iter().map(|r: Record| ConsumerRecord {
                topic: tp.topic.clone(),
                partition: tp.partition,
                offset: r.offset,
                timestamp: r.timestamp,
                message: r.message,
            }));
        }
        self.rotation = (self.rotation + 1) % n;
        out
    }

    /// Lag (records between position and log end) summed over the assignment.
    pub fn total_lag(&self) -> u64 {
        self.positions
            .iter()
            .map(|(tp, pos)| {
                self.broker
                    .end_offset(&tp.topic, tp.partition)
                    .unwrap_or(*pos)
                    .saturating_sub(*pos)
            })
            .sum()
    }

    /// The broker this consumer reads from.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }
}

impl std::fmt::Debug for Consumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("assignment", &self.assignment())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::SegmentConfig;
    use crate::topic::TopicConfig;

    fn broker_with(topic: &str, partitions: u32) -> Broker {
        let b = Broker::new();
        b.create_topic(topic, TopicConfig::with_partitions(partitions))
            .unwrap();
        b
    }

    #[test]
    fn poll_drains_in_partition_order_within_partition() {
        let b = broker_with("t", 1);
        for i in 0..5u8 {
            b.produce("t", 0, Message::new(vec![i])).unwrap();
        }
        let mut c = Consumer::new(b);
        c.assign("t", 0..1);
        let recs = c.poll(10);
        let offsets: Vec<u64> = recs.iter().map(|r| r.offset).collect();
        assert_eq!(offsets, vec![0, 1, 2, 3, 4]);
        assert!(c.poll(10).is_empty(), "second poll at head is empty");
    }

    #[test]
    fn poll_rotates_across_partitions() {
        let b = broker_with("t", 2);
        for i in 0..4u8 {
            b.produce("t", (i % 2) as u32, Message::new(vec![i]))
                .unwrap();
        }
        let mut c = Consumer::new(b);
        c.assign("t", 0..2);
        // Budget of 2 per poll: first poll favours partition 0, next favours 1.
        let first = c.poll(2);
        let second = c.poll(2);
        assert_eq!(first.len() + second.len(), 4);
        let mut partitions: Vec<u32> = first.iter().chain(&second).map(|r| r.partition).collect();
        partitions.sort_unstable();
        assert_eq!(partitions, vec![0, 0, 1, 1]);
    }

    #[test]
    fn seek_and_position() {
        let b = broker_with("t", 1);
        for i in 0..5u8 {
            b.produce("t", 0, Message::new(vec![i])).unwrap();
        }
        let mut c = Consumer::new(b);
        c.assign("t", 0..1);
        let tp = TopicPartition::new("t", 0);
        c.seek(&tp, 3).unwrap();
        let recs = c.poll(10);
        assert_eq!(recs[0].offset, 3);
        assert_eq!(c.position(&tp), Some(5));
        c.seek_to_beginning();
        assert_eq!(c.position(&tp), Some(0));
        c.seek_to_end();
        assert_eq!(c.position(&tp), Some(5));
    }

    #[test]
    fn seek_unassigned_partition_errors() {
        let b = broker_with("t", 1);
        let mut c = Consumer::new(b);
        assert!(c.seek(&TopicPartition::new("t", 0), 0).is_err());
    }

    #[test]
    fn seek_to_timestamp_positions_at_first_newer_record() {
        let b = broker_with("t", 1);
        for ts in [100, 200, 300] {
            b.produce("t", 0, Message::new("x").at(ts)).unwrap();
        }
        let mut c = Consumer::new(b);
        c.assign("t", 0..1);
        c.seek_to_timestamp(150);
        assert_eq!(c.poll(1)[0].timestamp, 200);
    }

    #[test]
    fn retention_reset_jumps_to_earliest() {
        let b = Broker::new();
        b.create_topic(
            "t",
            TopicConfig::with_partitions(1).segment(SegmentConfig {
                segment_max_records: 2,
                retention_bytes: 4,
                retention_ms: 0,
            }),
        )
        .unwrap();
        let mut c = Consumer::new(b.clone());
        c.assign("t", 0..1); // position 0
        for i in 0..10u8 {
            b.produce("t", 0, Message::new(vec![i])).unwrap();
        }
        // Retention dropped offset 0; first poll resets, second poll reads.
        let recs1 = c.poll(100);
        let recs2 = c.poll(100);
        let got = recs1.len() + recs2.len();
        assert!(got > 0, "consumer recovers after falling behind retention");
        let all: Vec<u64> = recs1.iter().chain(&recs2).map(|r| r.offset).collect();
        assert!(
            all.windows(2).all(|w| w[1] == w[0] + 1),
            "still in order: {all:?}"
        );
    }

    #[test]
    fn poll_retries_through_injected_fetch_faults() {
        use crate::error::FaultOp;
        use crate::fault::{FaultInjector, FaultKind, FaultSchedule, FaultSpec};

        let b = broker_with("t", 1);
        for i in 0..3u8 {
            b.produce("t", 0, Message::new(vec![i])).unwrap();
        }
        b.set_fault_injector(Some(FaultInjector::with_specs(
            4,
            vec![FaultSpec::any(
                FaultKind::TransientError,
                FaultSchedule::Window { from: 0, count: 3 },
            )
            .on_op(FaultOp::Fetch)],
        )));
        let mut c = Consumer::new(b);
        c.assign("t", 0..1);
        let recs = c.poll(10);
        assert_eq!(recs.len(), 3, "first three fetch attempts retried away");
        assert!(c.retrier().metrics().retries() >= 3);
    }

    #[test]
    fn lag_counts_unread_records() {
        let b = broker_with("t", 2);
        for _ in 0..3 {
            b.produce("t", 0, Message::new("x")).unwrap();
        }
        b.produce("t", 1, Message::new("x")).unwrap();
        let mut c = Consumer::new(b);
        c.assign("t", 0..2);
        assert_eq!(c.total_lag(), 4);
        c.poll(2);
        assert_eq!(c.total_lag(), 2);
    }
}
