//! Leader/follower replication simulation.
//!
//! The evaluation cluster in the paper replicates every Kafka topic; the
//! semantics Samza depends on are (a) acknowledged writes survive a leader
//! failure and (b) `acks=all` waits on the in-sync replica set. We model a
//! replica set per partition as *offset trackers*: followers replicate by
//! advancing their fetched offset toward the leader's end offset when
//! [`ReplicaSet::tick`] runs. Data is stored once (in the leader log) since
//! all replicas live in one process; what we simulate is the acknowledgement
//! and ISR-membership protocol.

use crate::error::{KafkaError, Result};

/// How many acknowledgements a produce requires, mirroring Kafka's `acks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckMode {
    /// Fire and forget.
    None,
    /// Leader append suffices (Kafka `acks=1`).
    #[default]
    Leader,
    /// All in-sync replicas must have replicated the record (`acks=all`).
    All,
}

/// Replication settings for a topic.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Total replicas including the leader.
    pub replication_factor: u32,
    /// Minimum in-sync replicas for `acks=all` to succeed.
    pub min_insync_replicas: u32,
    /// How many records a follower catches up per tick.
    pub records_per_tick: u64,
    /// Followers more than this many records behind drop out of the ISR.
    pub max_lag_records: u64,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            replication_factor: 1,
            min_insync_replicas: 1,
            records_per_tick: 1024,
            max_lag_records: 4096,
        }
    }
}

/// Per-partition replica bookkeeping.
#[derive(Debug)]
pub struct ReplicaSet {
    config: ReplicationConfig,
    /// Replicated end offset of each follower (leader excluded).
    follower_offsets: Vec<u64>,
    /// ISR membership per follower.
    in_sync: Vec<bool>,
    /// Followers currently failed (they neither replicate nor rejoin the ISR).
    failed: Vec<bool>,
}

impl ReplicaSet {
    pub fn new(config: ReplicationConfig) -> Self {
        let followers = config.replication_factor.saturating_sub(1) as usize;
        ReplicaSet {
            config,
            follower_offsets: vec![0; followers],
            in_sync: vec![true; followers],
            failed: vec![false; followers],
        }
    }

    /// Offsets replicated by every current ISR member (leader counts as
    /// having everything). This is the committed "high watermark" under
    /// `acks=all`.
    pub fn committed_offset(&self, leader_end: u64) -> u64 {
        self.follower_offsets
            .iter()
            .zip(&self.in_sync)
            .filter(|(_, isr)| **isr)
            .map(|(o, _)| *o)
            .fold(leader_end, |acc, o| acc.min(o))
    }

    /// Current in-sync replica count (including the leader).
    pub fn isr_count(&self) -> u32 {
        1 + self.in_sync.iter().filter(|x| **x).count() as u32
    }

    /// Advance follower replication toward `leader_end`; recompute ISR
    /// membership from lag. Failed followers neither advance nor rejoin.
    pub fn tick(&mut self, leader_end: u64) {
        for i in 0..self.follower_offsets.len() {
            if self.failed[i] {
                self.in_sync[i] = false;
                continue;
            }
            let off = &mut self.follower_offsets[i];
            *off = (*off + self.config.records_per_tick).min(leader_end);
            self.in_sync[i] = leader_end - *off <= self.config.max_lag_records;
        }
    }

    /// Check whether a produce at `leader_end` satisfies `mode`, given the
    /// current ISR. `acks=all` additionally requires `min_insync_replicas`.
    pub fn check_ack(&self, mode: AckMode, topic: &str, partition: u32) -> Result<()> {
        match mode {
            AckMode::None | AckMode::Leader => Ok(()),
            AckMode::All => {
                if self.isr_count() >= self.config.min_insync_replicas {
                    Ok(())
                } else {
                    Err(KafkaError::NotEnoughReplicas {
                        topic: topic.to_string(),
                        partition,
                    })
                }
            }
        }
    }

    /// Simulate a follower failure: it stops replicating; if `immediate`, it
    /// also leaves the ISR at once (otherwise the next tick ejects it as lag
    /// grows).
    pub fn fail_follower(&mut self, idx: usize, immediate: bool) {
        if let Some(f) = self.failed.get_mut(idx) {
            *f = true;
        }
        if immediate {
            if let Some(isr) = self.in_sync.get_mut(idx) {
                *isr = false;
            }
        }
    }

    /// Restore a failed follower; it rejoins the ISR once caught up.
    pub fn restore_follower(&mut self, idx: usize) {
        if let Some(f) = self.failed.get_mut(idx) {
            *f = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rf: u32, min_isr: u32, per_tick: u64, max_lag: u64) -> ReplicaSet {
        ReplicaSet::new(ReplicationConfig {
            replication_factor: rf,
            min_insync_replicas: min_isr,
            records_per_tick: per_tick,
            max_lag_records: max_lag,
        })
    }

    #[test]
    fn single_replica_always_acks() {
        let r = rs(1, 1, 1, 1);
        assert!(r.check_ack(AckMode::All, "t", 0).is_ok());
        assert_eq!(r.committed_offset(100), 100);
    }

    #[test]
    fn followers_catch_up_on_tick() {
        let mut r = rs(3, 2, 10, 100);
        r.tick(25);
        assert_eq!(r.committed_offset(25), 10);
        r.tick(25);
        r.tick(25);
        assert_eq!(r.committed_offset(25), 25);
    }

    #[test]
    fn lagging_follower_leaves_isr() {
        let mut r = rs(2, 2, 1, 5);
        r.tick(100); // follower at 1, lag 99 > 5 -> out of ISR
        assert_eq!(r.isr_count(), 1);
        assert!(r.check_ack(AckMode::All, "t", 0).is_err());
        // Leader acks still fine.
        assert!(r.check_ack(AckMode::Leader, "t", 0).is_ok());
    }

    #[test]
    fn failed_follower_freezes_then_recovers() {
        let mut r = rs(2, 1, 50, 10);
        r.tick(40); // caught up to 40
        r.fail_follower(0, true);
        r.tick(100);
        assert_eq!(r.isr_count(), 1, "failed follower must not advance/rejoin");
        r.restore_follower(0);
        r.tick(100);
        r.tick(100);
        assert_eq!(
            r.isr_count(),
            2,
            "restored follower catches up and rejoins ISR"
        );
    }
}
