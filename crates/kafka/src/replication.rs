//! Leader/follower replication simulation with leader failover.
//!
//! The evaluation cluster in the paper replicates every Kafka topic; the
//! semantics Samza depends on are (a) acknowledged writes survive a leader
//! failure and (b) `acks=all` waits on the in-sync replica set. We model a
//! replica set per partition as *offset trackers*: followers replicate by
//! advancing their fetched offset toward the leader's end offset when
//! [`ReplicaSet::tick`] runs. Data is stored once (in the leader log) since
//! all replicas live in one process; what we simulate is the acknowledgement
//! and ISR-membership protocol, plus **leader failover**:
//!
//! * every partition carries a **leader epoch**, bumped by
//!   [`ReplicaSet::fail_leader`];
//! * failover promotes the most-caught-up in-sync follower and truncates the
//!   log to the **committed offset** (the high watermark) — records past it
//!   were never replicated, so they are lost exactly as Kafka loses
//!   `acks=1` writes on leader failure;
//! * while the election is pending, produce and fetch fail with the
//!   retriable [`LeaderNotAvailable`](crate::KafkaError::LeaderNotAvailable);
//!   each failed attempt (and each [`tick`](ReplicaSet::tick)) advances the
//!   election, so clients recover through retries alone;
//! * fetch visibility is capped at the high watermark (see
//!   [`Broker::fetch`](crate::Broker::fetch)), so no consumer ever observes
//!   a record that failover could truncate.

use crate::error::{KafkaError, Result};

/// How many acknowledgements a produce requires, mirroring Kafka's `acks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckMode {
    /// Fire and forget.
    None,
    /// Leader append suffices (Kafka `acks=1`).
    #[default]
    Leader,
    /// All in-sync replicas must have replicated the record (`acks=all`).
    All,
}

/// Replication settings for a topic.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Total replicas including the leader.
    pub replication_factor: u32,
    /// Minimum in-sync replicas for `acks=all` to succeed.
    pub min_insync_replicas: u32,
    /// How many records a follower catches up per tick.
    pub records_per_tick: u64,
    /// Followers more than this many records behind drop out of the ISR.
    pub max_lag_records: u64,
    /// How many attempts/ticks a leader election takes to complete. Clients
    /// see `LeaderNotAvailable` for this many operations after
    /// [`ReplicaSet::fail_leader`]; retrying that many times rides it out.
    pub election_ticks: u32,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            replication_factor: 1,
            min_insync_replicas: 1,
            records_per_tick: 1024,
            max_lag_records: 4096,
            election_ticks: 3,
        }
    }
}

/// ISR membership changes observed by one [`ReplicaSet::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IsrDelta {
    /// Followers that left the ISR this tick.
    pub shrank: u32,
    /// Followers that (re)joined the ISR this tick.
    pub expanded: u32,
}

/// Per-partition replica bookkeeping.
#[derive(Debug)]
pub struct ReplicaSet {
    config: ReplicationConfig,
    /// Replicated end offset of each follower (leader excluded).
    follower_offsets: Vec<u64>,
    /// ISR membership per follower.
    in_sync: Vec<bool>,
    /// Followers currently failed (they neither replicate nor rejoin the ISR).
    failed: Vec<bool>,
    /// Leader epoch, bumped on every failover.
    epoch: u64,
    /// Remaining attempts/ticks before a pending election completes
    /// (0 = no election in progress).
    election_countdown: u32,
}

impl ReplicaSet {
    pub fn new(config: ReplicationConfig) -> Self {
        let followers = config.replication_factor.saturating_sub(1) as usize;
        ReplicaSet {
            config,
            follower_offsets: vec![0; followers],
            in_sync: vec![true; followers],
            failed: vec![false; followers],
            epoch: 0,
            election_countdown: 0,
        }
    }

    /// Offsets replicated by every current ISR member (leader counts as
    /// having everything). This is the committed "high watermark" under
    /// `acks=all`.
    pub fn committed_offset(&self, leader_end: u64) -> u64 {
        self.follower_offsets
            .iter()
            .zip(&self.in_sync)
            .filter(|(_, isr)| **isr)
            .map(|(o, _)| *o)
            .fold(leader_end, |acc, o| acc.min(o))
    }

    /// Current in-sync replica count (including the leader).
    pub fn isr_count(&self) -> u32 {
        1 + self.in_sync.iter().filter(|x| **x).count() as u32
    }

    /// Current leader epoch.
    pub fn leader_epoch(&self) -> u64 {
        self.epoch
    }

    /// True while a leader election is still in progress.
    pub fn election_pending(&self) -> bool {
        self.election_countdown > 0
    }

    /// Note one client attempt against this partition while an election is
    /// pending; enough attempts complete the election, so retry loops
    /// recover without any out-of-band tick.
    pub fn note_attempt(&mut self) {
        self.election_countdown = self.election_countdown.saturating_sub(1);
    }

    /// Advance follower replication toward `leader_end`; recompute ISR
    /// membership from lag. Failed followers neither advance nor rejoin.
    /// Also advances any pending leader election. Returns the ISR
    /// transitions this tick caused.
    pub fn tick(&mut self, leader_end: u64) -> IsrDelta {
        self.election_countdown = self.election_countdown.saturating_sub(1);
        let mut delta = IsrDelta::default();
        for i in 0..self.follower_offsets.len() {
            let was = self.in_sync[i];
            if self.failed[i] {
                self.in_sync[i] = false;
            } else {
                let off = &mut self.follower_offsets[i];
                *off = (*off + self.config.records_per_tick).min(leader_end);
                self.in_sync[i] = leader_end - *off <= self.config.max_lag_records;
            }
            match (was, self.in_sync[i]) {
                (true, false) => delta.shrank += 1,
                (false, true) => delta.expanded += 1,
                _ => {}
            }
        }
        delta
    }

    /// Check whether a produce at `leader_end` satisfies `mode`, given the
    /// current ISR. `acks=all` additionally requires `min_insync_replicas`.
    pub fn check_ack(&self, mode: AckMode, topic: &str, partition: u32) -> Result<()> {
        match mode {
            AckMode::None | AckMode::Leader => Ok(()),
            AckMode::All => {
                if self.isr_count() >= self.config.min_insync_replicas {
                    Ok(())
                } else {
                    Err(KafkaError::NotEnoughReplicas {
                        topic: topic.to_string(),
                        partition,
                    })
                }
            }
        }
    }

    /// Fail the leader: promote the most-caught-up in-sync follower, bump
    /// the epoch, and start an election window. Returns the committed offset
    /// the log must be truncated to (records past it were never replicated
    /// and die with the old leader). Errors with `NotEnoughReplicas` when no
    /// in-sync follower exists to promote.
    pub fn fail_leader(&mut self, leader_end: u64, topic: &str, partition: u32) -> Result<u64> {
        let committed = self.committed_offset(leader_end);
        // Choose the most-caught-up in-sync, non-failed follower.
        let promoted = self
            .follower_offsets
            .iter()
            .enumerate()
            .filter(|(i, _)| self.in_sync[*i] && !self.failed[*i])
            .max_by_key(|(_, off)| **off)
            .map(|(i, _)| i);
        let Some(promoted) = promoted else {
            return Err(KafkaError::NotEnoughReplicas {
                topic: topic.to_string(),
                partition,
            });
        };
        // The promoted follower leaves the follower list; the failed old
        // leader takes its slot, truncated to the committed offset (it will
        // rejoin by catching up from there once restored — Kafka's
        // truncate-to-leader-epoch on rejoin).
        self.follower_offsets[promoted] = committed;
        self.in_sync[promoted] = false;
        self.failed[promoted] = true;
        // Remaining live followers truncate to the new leader's log too.
        for off in self.follower_offsets.iter_mut() {
            *off = (*off).min(committed);
        }
        self.epoch += 1;
        self.election_countdown = self.config.election_ticks;
        Ok(committed)
    }

    /// Simulate a follower failure: it stops replicating; if `immediate`, it
    /// also leaves the ISR at once (otherwise the next tick ejects it as lag
    /// grows). Returns whether the ISR shrank right now.
    pub fn fail_follower(&mut self, idx: usize, immediate: bool) -> bool {
        if let Some(f) = self.failed.get_mut(idx) {
            *f = true;
        }
        if immediate {
            if let Some(isr) = self.in_sync.get_mut(idx) {
                let was = *isr;
                *isr = false;
                return was;
            }
        }
        false
    }

    /// Restore a failed follower; it rejoins the ISR once caught up.
    pub fn restore_follower(&mut self, idx: usize) {
        if let Some(f) = self.failed.get_mut(idx) {
            *f = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rf: u32, min_isr: u32, per_tick: u64, max_lag: u64) -> ReplicaSet {
        ReplicaSet::new(ReplicationConfig {
            replication_factor: rf,
            min_insync_replicas: min_isr,
            records_per_tick: per_tick,
            max_lag_records: max_lag,
            election_ticks: 3,
        })
    }

    #[test]
    fn single_replica_always_acks() {
        let r = rs(1, 1, 1, 1);
        assert!(r.check_ack(AckMode::All, "t", 0).is_ok());
        assert_eq!(r.committed_offset(100), 100);
    }

    #[test]
    fn followers_catch_up_on_tick() {
        let mut r = rs(3, 2, 10, 100);
        r.tick(25);
        assert_eq!(r.committed_offset(25), 10);
        r.tick(25);
        r.tick(25);
        assert_eq!(r.committed_offset(25), 25);
    }

    #[test]
    fn lagging_follower_leaves_isr() {
        let mut r = rs(2, 2, 1, 5);
        let delta = r.tick(100); // follower at 1, lag 99 > 5 -> out of ISR
        assert_eq!(r.isr_count(), 1);
        assert_eq!(
            delta,
            IsrDelta {
                shrank: 1,
                expanded: 0
            }
        );
        assert!(r.check_ack(AckMode::All, "t", 0).is_err());
        // Leader acks still fine.
        assert!(r.check_ack(AckMode::Leader, "t", 0).is_ok());
    }

    #[test]
    fn failed_follower_freezes_then_recovers() {
        let mut r = rs(2, 1, 50, 10);
        r.tick(40); // caught up to 40
        r.fail_follower(0, true);
        r.tick(100);
        assert_eq!(r.isr_count(), 1, "failed follower must not advance/rejoin");
        r.restore_follower(0);
        let delta = r.tick(100); // 40 -> 90, lag 10 <= 10: back in the ISR
        assert_eq!(delta.expanded, 1);
        assert_eq!(
            r.isr_count(),
            2,
            "restored follower catches up and rejoins ISR"
        );
    }

    #[test]
    fn fail_leader_promotes_and_truncates_to_committed() {
        let mut r = rs(3, 2, 100, 1000);
        r.tick(50); // both followers at 50
                    // Leader appends 20 more that never replicate.
        let committed = r.fail_leader(70, "t", 0).unwrap();
        assert_eq!(committed, 50, "truncate to the high watermark");
        assert_eq!(r.leader_epoch(), 1);
        assert!(r.election_pending());
        // Election completes after election_ticks attempts.
        r.note_attempt();
        r.note_attempt();
        r.note_attempt();
        assert!(!r.election_pending());
        // The old leader sits in the follower list, failed, at the HW.
        assert_eq!(r.isr_count(), 2, "promoted slot failed, one live follower");
    }

    #[test]
    fn fail_leader_without_in_sync_follower_errors() {
        let mut r = rs(2, 1, 1, 5);
        r.tick(100); // follower lags out of ISR
        assert!(matches!(
            r.fail_leader(100, "t", 0),
            Err(KafkaError::NotEnoughReplicas { .. })
        ));
        assert_eq!(r.leader_epoch(), 0, "no epoch bump on refused failover");
    }

    #[test]
    fn elections_also_complete_via_ticks() {
        let mut r = rs(2, 1, 100, 1000);
        r.tick(10);
        r.fail_leader(10, "t", 0).unwrap();
        assert!(r.election_pending());
        r.tick(10);
        r.tick(10);
        r.tick(10);
        assert!(!r.election_pending());
    }
}
