//! Segmented, append-only partition log.
//!
//! A [`PartitionLog`] is the unit of ordering in the broker: a time-ordered,
//! immutable sequence of [`Record`]s, each addressed by a dense offset. The
//! log is split into segments so retention can drop whole segments from
//! the front without shifting the remaining records — exactly the shape of an
//! on-disk Kafka log, just held in memory.

use crate::error::{KafkaError, Result};
use crate::message::Message;
use std::collections::VecDeque;

/// One record as stored in (and fetched from) the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Dense, per-partition sequence number.
    pub offset: u64,
    /// Event timestamp carried by the producer.
    pub timestamp: i64,
    /// Broker-assigned append time (logical milliseconds; see
    /// [`PartitionLog::append_at`]).
    pub append_time: i64,
    /// The message payload.
    pub message: Message,
}

/// Configuration for segment rolling and retention.
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Roll to a new segment after this many records.
    pub segment_max_records: usize,
    /// Retain at most this many bytes across the whole log (0 = unlimited).
    /// Oldest whole segments are dropped first; the active segment is never
    /// dropped.
    pub retention_bytes: u64,
    /// Retain records no older than this many milliseconds of *append* time
    /// relative to the latest append (0 = unlimited).
    pub retention_ms: i64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            segment_max_records: 4096,
            retention_bytes: 0,
            retention_ms: 0,
        }
    }
}

/// A contiguous run of records sharing storage.
#[derive(Debug)]
struct Segment {
    base_offset: u64,
    records: Vec<Record>,
    bytes: u64,
    /// Append time of the newest record in the segment.
    max_append_time: i64,
}

impl Segment {
    fn new(base_offset: u64) -> Self {
        Segment {
            base_offset,
            records: Vec::new(),
            bytes: 0,
            max_append_time: i64::MIN,
        }
    }

    fn next_offset(&self) -> u64 {
        self.base_offset + self.records.len() as u64
    }
}

/// Result of a fetch call: the records plus the high watermark at fetch time.
#[derive(Debug, Clone)]
pub struct FetchResult {
    pub records: Vec<Record>,
    /// Offset one past the last record in the log ("log end offset").
    pub high_watermark: u64,
}

/// An append-only, segmented, in-memory commit log for a single partition.
#[derive(Debug)]
pub struct PartitionLog {
    topic: String,
    partition: u32,
    config: SegmentConfig,
    segments: VecDeque<Segment>,
    /// First retained offset ("log start offset").
    start_offset: u64,
    total_bytes: u64,
    /// Logical clock used when the caller does not supply an append time.
    logical_now: i64,
}

impl PartitionLog {
    pub fn new(topic: impl Into<String>, partition: u32, config: SegmentConfig) -> Self {
        let mut segments = VecDeque::new();
        segments.push_back(Segment::new(0));
        PartitionLog {
            topic: topic.into(),
            partition,
            config,
            segments,
            start_offset: 0,
            total_bytes: 0,
            logical_now: 0,
        }
    }

    /// Offset that will be assigned to the next appended record.
    pub fn end_offset(&self) -> u64 {
        self.segments
            .back()
            .map(|s| s.next_offset())
            .unwrap_or(self.start_offset)
    }

    /// First retained offset.
    pub fn start_offset(&self) -> u64 {
        self.start_offset
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        (self.end_offset() - self.start_offset) as usize
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total retained payload bytes.
    pub fn retained_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Append a message using the internal logical clock for append time.
    pub fn append(&mut self, message: Message) -> u64 {
        self.logical_now += 1;
        let now = self.logical_now;
        self.append_at(message, now)
    }

    /// Append a message with an explicit append time. Returns the assigned
    /// offset. Retention is enforced after every append.
    pub fn append_at(&mut self, message: Message, append_time: i64) -> u64 {
        self.logical_now = self.logical_now.max(append_time);
        let bytes = message.payload_len() as u64;
        if self
            .segments
            .back()
            .map(|s| s.records.len() >= self.config.segment_max_records)
            .unwrap_or(true)
        {
            let next = self.end_offset();
            self.segments.push_back(Segment::new(next));
        }
        let seg = self.segments.back_mut().expect("active segment");
        let offset = seg.next_offset();
        seg.max_append_time = seg.max_append_time.max(append_time);
        seg.bytes += bytes;
        seg.records.push(Record {
            offset,
            timestamp: message.timestamp,
            append_time,
            message,
        });
        self.total_bytes += bytes;
        self.enforce_retention();
        offset
    }

    /// Fetch up to `max_records` starting at `from_offset`.
    ///
    /// Fetching exactly at the log end returns an empty batch (a consumer
    /// polling at the head). Fetching below the start offset or beyond the end
    /// is an error, matching Kafka's `OFFSET_OUT_OF_RANGE`.
    pub fn fetch(&self, from_offset: u64, max_records: usize) -> Result<FetchResult> {
        let end = self.end_offset();
        if from_offset > end || from_offset < self.start_offset {
            return Err(KafkaError::OffsetOutOfRange {
                topic: self.topic.clone(),
                partition: self.partition,
                requested: from_offset,
                start: self.start_offset,
                end,
            });
        }
        let mut records = Vec::new();
        if from_offset < end && max_records > 0 {
            // Binary search the segment containing from_offset.
            let idx = self
                .segments
                .iter()
                .position(|s| s.next_offset() > from_offset)
                .expect("offset within range must fall in a segment");
            'outer: for seg in self.segments.iter().skip(idx) {
                let skip = from_offset.saturating_sub(seg.base_offset) as usize;
                for rec in seg.records.iter().skip(skip) {
                    if rec.offset < from_offset {
                        continue;
                    }
                    records.push(rec.clone());
                    if records.len() >= max_records {
                        break 'outer;
                    }
                }
            }
        }
        Ok(FetchResult {
            records,
            high_watermark: end,
        })
    }

    /// Find the earliest offset whose record timestamp is `>= ts`, mirroring
    /// Kafka's `offsetsForTimes`. Returns the end offset if all records are
    /// older.
    pub fn offset_for_timestamp(&self, ts: i64) -> u64 {
        for seg in &self.segments {
            for rec in &seg.records {
                if rec.timestamp >= ts {
                    return rec.offset;
                }
            }
        }
        self.end_offset()
    }

    fn enforce_retention(&mut self) {
        // Size-based: drop oldest whole segments while over budget, keeping
        // the active (last) segment.
        if self.config.retention_bytes > 0 {
            while self.segments.len() > 1 && self.total_bytes > self.config.retention_bytes {
                let seg = self.segments.pop_front().expect("len > 1");
                self.total_bytes -= seg.bytes;
                self.start_offset = self.segments.front().expect("nonempty").base_offset;
            }
        }
        // Time-based: drop whole segments whose newest record is older than
        // the retention window relative to the logical now.
        if self.config.retention_ms > 0 {
            let cutoff = self.logical_now - self.config.retention_ms;
            while self.segments.len() > 1
                && self.segments.front().expect("nonempty").max_append_time < cutoff
            {
                let seg = self.segments.pop_front().expect("len > 1");
                self.total_bytes -= seg.bytes;
                self.start_offset = self.segments.front().expect("nonempty").base_offset;
            }
        }
    }

    /// Truncate the log so `offset` becomes the new end offset, dropping
    /// every record at or past it. Used by leader failover: records beyond
    /// the committed offset were never replicated and die with the old
    /// leader. No-op when `offset >= end`; truncating below the start
    /// offset clamps to the start (everything retained is dropped).
    pub fn truncate_to(&mut self, offset: u64) {
        let offset = offset.max(self.start_offset);
        if offset >= self.end_offset() {
            return;
        }
        while let Some(seg) = self.segments.back_mut() {
            if seg.base_offset >= offset {
                // Whole segment is past the truncation point.
                self.total_bytes -= seg.bytes;
                self.segments.pop_back();
                continue;
            }
            let keep = (offset - seg.base_offset) as usize;
            for rec in seg.records.drain(keep..) {
                seg.bytes -= rec.message.payload_len() as u64;
                self.total_bytes -= rec.message.payload_len() as u64;
            }
            seg.max_append_time = seg
                .records
                .iter()
                .map(|r| r.append_time)
                .max()
                .unwrap_or(i64::MIN);
            break;
        }
        if self.segments.is_empty() {
            self.segments.push_back(Segment::new(offset));
        }
    }

    /// Truncate everything (used by tests and compaction simulations).
    pub fn clear(&mut self) {
        let end = self.end_offset();
        self.segments.clear();
        self.segments.push_back(Segment::new(end));
        self.start_offset = end;
        self.total_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(seg_records: usize, retention_bytes: u64) -> PartitionLog {
        PartitionLog::new(
            "t",
            0,
            SegmentConfig {
                segment_max_records: seg_records,
                retention_bytes,
                retention_ms: 0,
            },
        )
    }

    #[test]
    fn offsets_are_dense_and_monotonic() {
        let mut log = log_with(4, 0);
        for i in 0..10u8 {
            let off = log.append(Message::new(vec![i]));
            assert_eq!(off, i as u64);
        }
        assert_eq!(log.end_offset(), 10);
        assert_eq!(log.len(), 10);
    }

    #[test]
    fn fetch_spans_segments() {
        let mut log = log_with(3, 0);
        for i in 0..10u8 {
            log.append(Message::new(vec![i]));
        }
        let out = log.fetch(2, 5).unwrap();
        assert_eq!(out.records.len(), 5);
        let offsets: Vec<u64> = out.records.iter().map(|r| r.offset).collect();
        assert_eq!(offsets, vec![2, 3, 4, 5, 6]);
        assert_eq!(out.high_watermark, 10);
    }

    #[test]
    fn fetch_at_head_is_empty() {
        let mut log = log_with(4, 0);
        log.append(Message::new("a"));
        let out = log.fetch(1, 10).unwrap();
        assert!(out.records.is_empty());
    }

    #[test]
    fn fetch_out_of_range_errors() {
        let log = log_with(4, 0);
        assert!(matches!(
            log.fetch(5, 1),
            Err(KafkaError::OffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn size_retention_drops_oldest_segments() {
        // 1-byte messages, 2 records/segment, keep at most 4 bytes.
        let mut log = log_with(2, 4);
        for i in 0..10u8 {
            log.append(Message::new(vec![i]));
        }
        assert!(log.start_offset() > 0, "old segments must be dropped");
        assert!(log.retained_bytes() <= 4 + 2, "roughly within budget");
        // Reads below the start offset now fail.
        assert!(log.fetch(0, 1).is_err());
        // Reads at the start offset succeed.
        let out = log.fetch(log.start_offset(), 100).unwrap();
        assert_eq!(out.records.last().unwrap().offset, 9);
    }

    #[test]
    fn time_retention_drops_old_segments() {
        let mut log = PartitionLog::new(
            "t",
            0,
            SegmentConfig {
                segment_max_records: 2,
                retention_bytes: 0,
                retention_ms: 10,
            },
        );
        for t in 0..8 {
            log.append_at(Message::new("x"), t * 5);
        }
        // Newest append time is 35; cutoff 25 drops segments fully older.
        assert!(log.start_offset() > 0);
    }

    #[test]
    fn offset_for_timestamp_finds_first_at_or_after() {
        let mut log = log_with(4, 0);
        for t in [10, 20, 30, 40] {
            log.append(Message::new("x").at(t));
        }
        assert_eq!(log.offset_for_timestamp(0), 0);
        assert_eq!(log.offset_for_timestamp(20), 1);
        assert_eq!(log.offset_for_timestamp(25), 2);
        assert_eq!(log.offset_for_timestamp(99), 4);
    }

    #[test]
    fn truncate_to_drops_tail_across_segments() {
        let mut log = log_with(3, 0);
        for i in 0..10u8 {
            log.append(Message::new(vec![i]));
        }
        log.truncate_to(4);
        assert_eq!(log.end_offset(), 4);
        assert_eq!(log.len(), 4);
        assert_eq!(log.retained_bytes(), 4);
        let out = log.fetch(0, 100).unwrap();
        let offsets: Vec<u64> = out.records.iter().map(|r| r.offset).collect();
        assert_eq!(offsets, vec![0, 1, 2, 3]);
        // Appends continue densely from the truncation point.
        assert_eq!(log.append(Message::new("z")), 4);
        // Truncating at or past the end is a no-op.
        log.truncate_to(99);
        assert_eq!(log.end_offset(), 5);
    }

    #[test]
    fn truncate_to_start_empties_log() {
        let mut log = log_with(2, 0);
        for i in 0..5u8 {
            log.append(Message::new(vec![i]));
        }
        log.truncate_to(0);
        assert!(log.is_empty());
        assert_eq!(log.end_offset(), 0);
        assert_eq!(log.append(Message::new("a")), 0);
    }

    #[test]
    fn clear_advances_start() {
        let mut log = log_with(4, 0);
        for i in 0..5u8 {
            log.append(Message::new(vec![i]));
        }
        log.clear();
        assert_eq!(log.start_offset(), 5);
        assert_eq!(log.end_offset(), 5);
        assert!(log.is_empty());
        // Appends continue from where the log left off.
        assert_eq!(log.append(Message::new("y")), 5);
    }
}
