//! Consumer-group coordination: membership, rebalancing, and partition
//! assignment.
//!
//! Samza's job coordinator performs its own partition→task placement, but the
//! SamzaSQL shell and auxiliary consumers (e.g. the metadata tailer) use
//! plain consumer groups, so the broker carries a coordinator with the two
//! classic assignors.

use crate::broker::Broker;
use crate::error::{KafkaError, Result};
use crate::message::TopicPartition;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};

/// Partition assignment strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Assignor {
    /// Contiguous ranges of partitions per member, per topic (Kafka's
    /// `RangeAssignor`, the default).
    #[default]
    Range,
    /// Partitions dealt out one at a time across members
    /// (`RoundRobinAssignor`).
    RoundRobin,
}

/// A member's view of its group membership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMember {
    pub group: String,
    pub member_id: String,
    pub generation: u64,
    pub assignment: Vec<TopicPartition>,
}

#[derive(Debug, Default)]
struct GroupState {
    generation: u64,
    members: BTreeSet<String>,
    subscriptions: BTreeMap<String, Vec<String>>, // member -> topics
    assignor: Assignor,
    assignments: BTreeMap<String, Vec<TopicPartition>>,
}

/// Broker-side group coordinator.
#[derive(Debug, Default)]
pub struct GroupCoordinator {
    groups: Mutex<BTreeMap<String, GroupState>>,
}

impl GroupCoordinator {
    pub fn new() -> Self {
        GroupCoordinator::default()
    }

    /// Join `group` subscribing to `topics`; triggers a rebalance and returns
    /// the member's new assignment. Idempotent re-joins with the same
    /// subscription still bump the generation (matching Kafka, where every
    /// join triggers a rebalance).
    pub fn join(
        &self,
        broker: &Broker,
        group: &str,
        member_id: &str,
        topics: &[&str],
        assignor: Assignor,
    ) -> Result<GroupMember> {
        let mut groups = self.groups.lock();
        let state = groups.entry(group.to_string()).or_default();
        state.assignor = assignor;
        state.members.insert(member_id.to_string());
        state
            .subscriptions
            .insert(member_id.to_string(), topics.iter().map(|s| s.to_string()).collect());
        state.generation += 1;
        Self::rebalance(broker, state)?;
        Ok(GroupMember {
            group: group.to_string(),
            member_id: member_id.to_string(),
            generation: state.generation,
            assignment: state.assignments.get(member_id).cloned().unwrap_or_default(),
        })
    }

    /// Leave a group, triggering a rebalance for the remaining members.
    pub fn leave(&self, broker: &Broker, group: &str, member_id: &str) -> Result<()> {
        let mut groups = self.groups.lock();
        let state = groups
            .get_mut(group)
            .ok_or_else(|| KafkaError::UnknownGroup(group.to_string()))?;
        state.members.remove(member_id);
        state.subscriptions.remove(member_id);
        state.assignments.remove(member_id);
        state.generation += 1;
        Self::rebalance(broker, state)?;
        Ok(())
    }

    /// Fetch a member's current assignment, verifying its generation.
    pub fn assignment(
        &self,
        group: &str,
        member_id: &str,
        generation: u64,
    ) -> Result<Vec<TopicPartition>> {
        let groups = self.groups.lock();
        let state = groups
            .get(group)
            .ok_or_else(|| KafkaError::UnknownGroup(group.to_string()))?;
        if state.generation != generation {
            return Err(KafkaError::StaleGeneration {
                group: group.to_string(),
                expected: state.generation,
                actual: generation,
            });
        }
        Ok(state.assignments.get(member_id).cloned().unwrap_or_default())
    }

    /// Current generation of a group.
    pub fn generation(&self, group: &str) -> Option<u64> {
        self.groups.lock().get(group).map(|s| s.generation)
    }

    fn rebalance(broker: &Broker, state: &mut GroupState) -> Result<()> {
        state.assignments.clear();
        if state.members.is_empty() {
            return Ok(());
        }
        // Union of subscribed topics, with their partitions.
        let mut all_topics: BTreeSet<String> = BTreeSet::new();
        for topics in state.subscriptions.values() {
            all_topics.extend(topics.iter().cloned());
        }
        let members: Vec<String> = state.members.iter().cloned().collect();
        match state.assignor {
            Assignor::Range => {
                // Per topic: split the partition space into contiguous ranges
                // over the members subscribed to that topic.
                for topic in &all_topics {
                    let count = broker.partition_count(topic)?;
                    let subscribed: Vec<&String> = members
                        .iter()
                        .filter(|m| {
                            state.subscriptions.get(*m).is_some_and(|ts| ts.contains(topic))
                        })
                        .collect();
                    if subscribed.is_empty() {
                        continue;
                    }
                    let n = subscribed.len() as u32;
                    let per = count / n;
                    let extra = count % n;
                    let mut next = 0u32;
                    for (i, m) in subscribed.iter().enumerate() {
                        let take = per + u32::from((i as u32) < extra);
                        let parts = state.assignments.entry((*m).clone()).or_default();
                        for p in next..next + take {
                            parts.push(TopicPartition::new(topic.clone(), p));
                        }
                        next += take;
                    }
                }
            }
            Assignor::RoundRobin => {
                // Deal every (topic, partition) across subscribed members.
                let mut cursor = 0usize;
                for topic in &all_topics {
                    let count = broker.partition_count(topic)?;
                    let subscribed: Vec<&String> = members
                        .iter()
                        .filter(|m| {
                            state.subscriptions.get(*m).is_some_and(|ts| ts.contains(topic))
                        })
                        .collect();
                    if subscribed.is_empty() {
                        continue;
                    }
                    for p in 0..count {
                        let m = subscribed[cursor % subscribed.len()];
                        state
                            .assignments
                            .entry(m.clone())
                            .or_default()
                            .push(TopicPartition::new(topic.clone(), p));
                        cursor += 1;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicConfig;

    fn broker() -> Broker {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(8)).unwrap();
        b
    }

    #[test]
    fn single_member_gets_everything() {
        let b = broker();
        let gc = b.group_coordinator();
        let m = gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        assert_eq!(m.assignment.len(), 8);
        assert_eq!(m.generation, 1);
    }

    #[test]
    fn range_assignor_splits_contiguously() {
        let b = broker();
        let gc = b.group_coordinator();
        gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        let m2 = gc.join(&b, "g", "m2", &["t"], Assignor::Range).unwrap();
        let a1 = gc.assignment("g", "m1", m2.generation).unwrap();
        let a2 = m2.assignment;
        assert_eq!(a1.len(), 4);
        assert_eq!(a2.len(), 4);
        // Contiguity: each member's partitions are consecutive.
        let ps1: Vec<u32> = a1.iter().map(|tp| tp.partition).collect();
        assert!(ps1.windows(2).all(|w| w[1] == w[0] + 1), "{ps1:?}");
        // Disjoint and complete.
        let mut all: Vec<u32> =
            a1.iter().chain(&a2).map(|tp| tp.partition).collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn round_robin_deals_partitions() {
        let b = broker();
        let gc = b.group_coordinator();
        gc.join(&b, "g", "m1", &["t"], Assignor::RoundRobin).unwrap();
        gc.join(&b, "g", "m2", &["t"], Assignor::RoundRobin).unwrap();
        gc.join(&b, "g", "m3", &["t"], Assignor::RoundRobin).unwrap();
        let gen = gc.generation("g").unwrap();
        let sizes: Vec<usize> = ["m1", "m2", "m3"]
            .iter()
            .map(|m| gc.assignment("g", m, gen).unwrap().len())
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert!(sizes.iter().all(|s| (2..=3).contains(s)), "{sizes:?}");
    }

    #[test]
    fn leave_rebalances_remaining_members() {
        let b = broker();
        let gc = b.group_coordinator();
        gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        gc.join(&b, "g", "m2", &["t"], Assignor::Range).unwrap();
        gc.leave(&b, "g", "m1").unwrap();
        let gen = gc.generation("g").unwrap();
        let a2 = gc.assignment("g", "m2", gen).unwrap();
        assert_eq!(a2.len(), 8, "survivor takes over all partitions");
    }

    #[test]
    fn stale_generation_is_rejected() {
        let b = broker();
        let gc = b.group_coordinator();
        let m1 = gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        gc.join(&b, "g", "m2", &["t"], Assignor::Range).unwrap();
        assert!(matches!(
            gc.assignment("g", "m1", m1.generation),
            Err(KafkaError::StaleGeneration { .. })
        ));
    }

    #[test]
    fn unknown_group_errors() {
        let b = broker();
        let gc = b.group_coordinator();
        assert!(matches!(gc.assignment("nope", "m", 1), Err(KafkaError::UnknownGroup(_))));
        assert!(matches!(gc.leave(&b, "nope", "m"), Err(KafkaError::UnknownGroup(_))));
    }
}
