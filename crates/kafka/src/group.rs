//! Consumer-group coordination: membership, rebalancing, and partition
//! assignment.
//!
//! Samza's job coordinator performs its own partition→task placement, but the
//! SamzaSQL shell and auxiliary consumers (e.g. the metadata tailer) use
//! plain consumer groups, so the broker carries a coordinator with the two
//! classic assignors.
//!
//! Membership is backed by the coordination service: each member owns a
//! session and an ephemeral node under `/kafka/groups/<group>` (the
//! [`GroupMembership`] recipe). Members heartbeat through
//! [`GroupCoordinator::heartbeat`]; a member whose session expires loses its
//! ephemeral node, the coordinator's membership watch marks the group dirty,
//! and the next coordinator operation (or an explicit
//! [`GroupCoordinator::sync`]) evicts the corpse and rebalances its
//! partitions across the survivors. This closes the old gap where a vanished
//! member kept its partitions assigned forever.

use crate::broker::Broker;
use crate::error::{KafkaError, Result};
use crate::message::TopicPartition;
use parking_lot::Mutex;
use samzasql_coord::recipes::GroupMembership;
use samzasql_coord::{Coord, CoordError, SessionId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Default session timeout for group members, in coordination-clock ms.
/// Deliberately much shorter than the container liveness timeout so tests
/// can expire consumers without collaterally expiring containers.
const DEFAULT_SESSION_TIMEOUT_MS: u64 = 10_000;

/// Partition assignment strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Assignor {
    /// Contiguous ranges of partitions per member, per topic (Kafka's
    /// `RangeAssignor`, the default).
    #[default]
    Range,
    /// Partitions dealt out one at a time across members
    /// (`RoundRobinAssignor`).
    RoundRobin,
}

/// A member's view of its group membership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMember {
    pub group: String,
    pub member_id: String,
    pub generation: u64,
    pub assignment: Vec<TopicPartition>,
}

#[derive(Debug, Default)]
struct GroupState {
    generation: u64,
    members: BTreeSet<String>,
    subscriptions: BTreeMap<String, Vec<String>>, // member -> topics
    assignor: Assignor,
    assignments: BTreeMap<String, Vec<TopicPartition>>,
    /// Coordination session backing each member's ephemeral node.
    sessions: BTreeMap<String, SessionId>,
    /// Whether the dirty-marking membership watch is armed for this group.
    watched: bool,
}

/// Broker-side group coordinator.
#[derive(Debug)]
pub struct GroupCoordinator {
    coord: Coord,
    groups: Mutex<BTreeMap<String, GroupState>>,
    /// Groups whose coordination-service membership changed behind our back
    /// (ephemeral nodes appeared/vanished); reconciled lazily by
    /// [`GroupCoordinator::sync`] and at the top of every operation.
    dirty: Arc<Mutex<BTreeSet<String>>>,
    session_timeout_ms: u64,
}

fn coord_err(e: CoordError) -> KafkaError {
    KafkaError::Coordination(e.to_string())
}

impl GroupCoordinator {
    pub fn new() -> Self {
        GroupCoordinator::with_coord(Coord::new())
    }

    /// A coordinator over a shared coordination service (so the rest of the
    /// stack can observe and fault-inject group membership).
    pub fn with_coord(coord: Coord) -> Self {
        GroupCoordinator {
            coord,
            groups: Mutex::new(BTreeMap::new()),
            dirty: Arc::new(Mutex::new(BTreeSet::new())),
            session_timeout_ms: DEFAULT_SESSION_TIMEOUT_MS,
        }
    }

    /// The coordination service backing group membership.
    pub fn coord(&self) -> &Coord {
        &self.coord
    }

    fn group_path(group: &str) -> String {
        format!("/kafka/groups/{group}")
    }

    /// Join `group` subscribing to `topics`; triggers a rebalance and returns
    /// the member's new assignment. Idempotent re-joins with the same
    /// subscription still bump the generation (matching Kafka, where every
    /// join triggers a rebalance).
    pub fn join(
        &self,
        broker: &Broker,
        group: &str,
        member_id: &str,
        topics: &[&str],
        assignor: Assignor,
    ) -> Result<GroupMember> {
        self.process_dirty(broker)?;
        let membership =
            GroupMembership::new(self.coord.clone(), Self::group_path(group)).map_err(coord_err)?;
        let mut groups = self.groups.lock();
        let state = groups.entry(group.to_string()).or_default();
        state.assignor = assignor;
        // Reuse the member's live session on re-join; mint a fresh one if it
        // is new or its previous session expired.
        let session = match state.sessions.get(member_id) {
            Some(s) if self.coord.session_alive(*s) => *s,
            _ => {
                let s = self.coord.create_session(self.session_timeout_ms);
                state.sessions.insert(member_id.to_string(), s);
                s
            }
        };
        membership.join(session, member_id, "").map_err(coord_err)?;
        if !state.watched {
            let dirty = self.dirty.clone();
            let g = group.to_string();
            membership
                .watch(move |_members| {
                    dirty.lock().insert(g.clone());
                })
                .map_err(coord_err)?;
            state.watched = true;
        }
        state.members.insert(member_id.to_string());
        state.subscriptions.insert(
            member_id.to_string(),
            topics.iter().map(|s| s.to_string()).collect(),
        );
        state.generation += 1;
        Self::rebalance(broker, state)?;
        Ok(GroupMember {
            group: group.to_string(),
            member_id: member_id.to_string(),
            generation: state.generation,
            assignment: state
                .assignments
                .get(member_id)
                .cloned()
                .unwrap_or_default(),
        })
    }

    /// Heartbeat a member's session, keeping its ephemeral node (and thus
    /// its partitions) alive, and return the group's current generation so
    /// the member can detect rebalances. Errs with
    /// [`KafkaError::UnknownMember`] once the member's session has expired.
    pub fn heartbeat(&self, broker: &Broker, group: &str, member_id: &str) -> Result<u64> {
        self.process_dirty(broker)?;
        let session = {
            let groups = self.groups.lock();
            let state = groups
                .get(group)
                .ok_or_else(|| KafkaError::UnknownGroup(group.to_string()))?;
            *state
                .sessions
                .get(member_id)
                .ok_or_else(|| KafkaError::UnknownMember {
                    group: group.to_string(),
                    member: member_id.to_string(),
                })?
        };
        if self.coord.heartbeat(session).is_err() {
            // Session expired between eviction sweeps: the member is gone,
            // its partitions will be (or already were) reassigned.
            return Err(KafkaError::UnknownMember {
                group: group.to_string(),
                member: member_id.to_string(),
            });
        }
        self.generation(group)
            .ok_or_else(|| KafkaError::UnknownGroup(group.to_string()))
    }

    /// Reconcile every group whose coordination-service membership changed:
    /// members whose ephemeral nodes vanished (session expiry) are evicted
    /// and their partitions rebalanced across the survivors.
    pub fn sync(&self, broker: &Broker) -> Result<()> {
        self.process_dirty(broker)
    }

    fn process_dirty(&self, broker: &Broker) -> Result<()> {
        let dirty: Vec<String> = std::mem::take(&mut *self.dirty.lock())
            .into_iter()
            .collect();
        if dirty.is_empty() {
            return Ok(());
        }
        let mut groups = self.groups.lock();
        for group in dirty {
            let Some(state) = groups.get_mut(&group) else {
                continue;
            };
            let live: BTreeSet<String> = self
                .coord
                .children(Self::group_path(&group))
                .unwrap_or_default()
                .into_iter()
                .collect();
            let gone: Vec<String> = state
                .members
                .iter()
                .filter(|m| !live.contains(*m))
                .cloned()
                .collect();
            if gone.is_empty() {
                continue;
            }
            for m in &gone {
                state.members.remove(m);
                state.subscriptions.remove(m);
                state.assignments.remove(m);
                state.sessions.remove(m);
            }
            state.generation += 1;
            Self::rebalance(broker, state)?;
        }
        Ok(())
    }

    /// Leave a group, triggering a rebalance for the remaining members.
    pub fn leave(&self, broker: &Broker, group: &str, member_id: &str) -> Result<()> {
        self.process_dirty(broker)?;
        let session = {
            let mut groups = self.groups.lock();
            let state = groups
                .get_mut(group)
                .ok_or_else(|| KafkaError::UnknownGroup(group.to_string()))?;
            state.members.remove(member_id);
            state.subscriptions.remove(member_id);
            state.assignments.remove(member_id);
            let session = state.sessions.remove(member_id);
            state.generation += 1;
            Self::rebalance(broker, state)?;
            session
        };
        // Retire the session outside the groups lock: deleting the ephemeral
        // node fires the membership watch synchronously.
        if let Some(s) = session {
            let _ = self.coord.close_session(s);
        }
        Ok(())
    }

    /// Fetch a member's current assignment, verifying its generation.
    pub fn assignment(
        &self,
        group: &str,
        member_id: &str,
        generation: u64,
    ) -> Result<Vec<TopicPartition>> {
        let groups = self.groups.lock();
        let state = groups
            .get(group)
            .ok_or_else(|| KafkaError::UnknownGroup(group.to_string()))?;
        if state.generation != generation {
            return Err(KafkaError::StaleGeneration {
                group: group.to_string(),
                expected: state.generation,
                actual: generation,
            });
        }
        Ok(state
            .assignments
            .get(member_id)
            .cloned()
            .unwrap_or_default())
    }

    /// Current generation of a group.
    pub fn generation(&self, group: &str) -> Option<u64> {
        self.groups.lock().get(group).map(|s| s.generation)
    }

    /// The coordination session backing a member (for fault injection).
    pub fn member_session(&self, group: &str, member_id: &str) -> Option<SessionId> {
        self.groups
            .lock()
            .get(group)?
            .sessions
            .get(member_id)
            .copied()
    }

    fn rebalance(broker: &Broker, state: &mut GroupState) -> Result<()> {
        state.assignments.clear();
        if state.members.is_empty() {
            return Ok(());
        }
        // Union of subscribed topics, with their partitions.
        let mut all_topics: BTreeSet<String> = BTreeSet::new();
        for topics in state.subscriptions.values() {
            all_topics.extend(topics.iter().cloned());
        }
        let members: Vec<String> = state.members.iter().cloned().collect();
        match state.assignor {
            Assignor::Range => {
                // Per topic: split the partition space into contiguous ranges
                // over the members subscribed to that topic.
                for topic in &all_topics {
                    let count = broker.partition_count(topic)?;
                    let subscribed: Vec<&String> = members
                        .iter()
                        .filter(|m| {
                            state
                                .subscriptions
                                .get(*m)
                                .is_some_and(|ts| ts.contains(topic))
                        })
                        .collect();
                    if subscribed.is_empty() {
                        continue;
                    }
                    let n = subscribed.len() as u32;
                    let per = count / n;
                    let extra = count % n;
                    let mut next = 0u32;
                    for (i, m) in subscribed.iter().enumerate() {
                        let take = per + u32::from((i as u32) < extra);
                        let parts = state.assignments.entry((*m).clone()).or_default();
                        for p in next..next + take {
                            parts.push(TopicPartition::new(topic.clone(), p));
                        }
                        next += take;
                    }
                }
            }
            Assignor::RoundRobin => {
                // Deal every (topic, partition) across subscribed members.
                let mut cursor = 0usize;
                for topic in &all_topics {
                    let count = broker.partition_count(topic)?;
                    let subscribed: Vec<&String> = members
                        .iter()
                        .filter(|m| {
                            state
                                .subscriptions
                                .get(*m)
                                .is_some_and(|ts| ts.contains(topic))
                        })
                        .collect();
                    if subscribed.is_empty() {
                        continue;
                    }
                    for p in 0..count {
                        let m = subscribed[cursor % subscribed.len()];
                        state
                            .assignments
                            .entry(m.clone())
                            .or_default()
                            .push(TopicPartition::new(topic.clone(), p));
                        cursor += 1;
                    }
                }
            }
        }
        Ok(())
    }
}

impl Default for GroupCoordinator {
    fn default() -> Self {
        GroupCoordinator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicConfig;

    fn broker() -> Broker {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::with_partitions(8))
            .unwrap();
        b
    }

    #[test]
    fn single_member_gets_everything() {
        let b = broker();
        let gc = b.group_coordinator();
        let m = gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        assert_eq!(m.assignment.len(), 8);
        assert_eq!(m.generation, 1);
    }

    #[test]
    fn range_assignor_splits_contiguously() {
        let b = broker();
        let gc = b.group_coordinator();
        gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        let m2 = gc.join(&b, "g", "m2", &["t"], Assignor::Range).unwrap();
        let a1 = gc.assignment("g", "m1", m2.generation).unwrap();
        let a2 = m2.assignment;
        assert_eq!(a1.len(), 4);
        assert_eq!(a2.len(), 4);
        // Contiguity: each member's partitions are consecutive.
        let ps1: Vec<u32> = a1.iter().map(|tp| tp.partition).collect();
        assert!(ps1.windows(2).all(|w| w[1] == w[0] + 1), "{ps1:?}");
        // Disjoint and complete.
        let mut all: Vec<u32> = a1.iter().chain(&a2).map(|tp| tp.partition).collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn round_robin_deals_partitions() {
        let b = broker();
        let gc = b.group_coordinator();
        gc.join(&b, "g", "m1", &["t"], Assignor::RoundRobin)
            .unwrap();
        gc.join(&b, "g", "m2", &["t"], Assignor::RoundRobin)
            .unwrap();
        gc.join(&b, "g", "m3", &["t"], Assignor::RoundRobin)
            .unwrap();
        let gen = gc.generation("g").unwrap();
        let sizes: Vec<usize> = ["m1", "m2", "m3"]
            .iter()
            .map(|m| gc.assignment("g", m, gen).unwrap().len())
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert!(sizes.iter().all(|s| (2..=3).contains(s)), "{sizes:?}");
    }

    #[test]
    fn leave_rebalances_remaining_members() {
        let b = broker();
        let gc = b.group_coordinator();
        gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        gc.join(&b, "g", "m2", &["t"], Assignor::Range).unwrap();
        gc.leave(&b, "g", "m1").unwrap();
        let gen = gc.generation("g").unwrap();
        let a2 = gc.assignment("g", "m2", gen).unwrap();
        assert_eq!(a2.len(), 8, "survivor takes over all partitions");
    }

    #[test]
    fn stale_generation_is_rejected() {
        let b = broker();
        let gc = b.group_coordinator();
        let m1 = gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        gc.join(&b, "g", "m2", &["t"], Assignor::Range).unwrap();
        assert!(matches!(
            gc.assignment("g", "m1", m1.generation),
            Err(KafkaError::StaleGeneration { .. })
        ));
    }

    #[test]
    fn unknown_group_errors() {
        let b = broker();
        let gc = b.group_coordinator();
        assert!(matches!(
            gc.assignment("nope", "m", 1),
            Err(KafkaError::UnknownGroup(_))
        ));
        assert!(matches!(
            gc.leave(&b, "nope", "m"),
            Err(KafkaError::UnknownGroup(_))
        ));
    }

    #[test]
    fn expired_member_is_evicted_and_partitions_reassigned() {
        let b = broker();
        let gc = b.group_coordinator();
        let coord = gc.coord().clone();
        gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        let m2 = gc.join(&b, "g", "m2", &["t"], Assignor::Range).unwrap();
        assert_eq!(m2.assignment.len(), 4);

        // m1 keeps heartbeating across the timeout window; m2 goes silent.
        coord.advance(6_000);
        gc.heartbeat(&b, "g", "m1").unwrap();
        coord.advance(6_000); // m2's session (10s timeout) is now overdue
        gc.sync(&b).unwrap();

        let gen = gc.generation("g").unwrap();
        assert_eq!(gen, m2.generation + 1, "eviction bumped the generation");
        let a1 = gc.assignment("g", "m1", gen).unwrap();
        assert_eq!(a1.len(), 8, "survivor owns every partition");
        assert!(matches!(
            gc.heartbeat(&b, "g", "m2"),
            Err(KafkaError::UnknownMember { .. })
        ));
    }

    #[test]
    fn heartbeat_reports_generation_and_keeps_member_alive() {
        let b = broker();
        let gc = b.group_coordinator();
        let coord = gc.coord().clone();
        let m1 = gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        for _ in 0..5 {
            coord.advance(6_000);
            let gen = gc.heartbeat(&b, "g", "m1").unwrap();
            assert_eq!(gen, m1.generation, "no rebalance while alone and alive");
        }
        assert_eq!(gc.assignment("g", "m1", m1.generation).unwrap().len(), 8);
    }

    #[test]
    fn force_expiry_triggers_rebalance_without_clock_advance() {
        let b = broker();
        let gc = b.group_coordinator();
        let coord = gc.coord().clone();
        gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        gc.join(&b, "g", "m2", &["t"], Assignor::Range).unwrap();
        let s2 = gc.member_session("g", "m2").unwrap();
        coord.force_expire(s2).unwrap();
        // The next heartbeat from the survivor reconciles the group.
        let gen = gc.heartbeat(&b, "g", "m1").unwrap();
        assert_eq!(gc.assignment("g", "m1", gen).unwrap().len(), 8);
    }

    #[test]
    fn rejoin_after_expiry_gets_fresh_session() {
        let b = broker();
        let gc = b.group_coordinator();
        let coord = gc.coord().clone();
        gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        let s1 = gc.member_session("g", "m1").unwrap();
        coord.force_expire(s1).unwrap();
        let m1 = gc.join(&b, "g", "m1", &["t"], Assignor::Range).unwrap();
        assert_ne!(gc.member_session("g", "m1").unwrap(), s1);
        assert_eq!(m1.assignment.len(), 8);
        gc.heartbeat(&b, "g", "m1").unwrap();
    }
}
