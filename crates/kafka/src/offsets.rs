//! Committed consumer-group offsets (the `__consumer_offsets` analogue).

use crate::message::TopicPartition;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Durable-in-process store of (group, topic-partition) → committed offset.
///
/// The committed offset follows the Kafka convention: it is the offset of the
/// *next* record the group should consume (one past the last processed one).
#[derive(Debug, Default)]
pub struct OffsetStore {
    committed: RwLock<HashMap<(String, TopicPartition), u64>>,
}

impl OffsetStore {
    pub fn new() -> Self {
        OffsetStore::default()
    }

    /// Commit `offset` for `group` on `tp` (overwrites any previous commit).
    pub fn commit(&self, group: &str, tp: TopicPartition, offset: u64) {
        self.committed
            .write()
            .insert((group.to_string(), tp), offset);
    }

    /// Fetch the committed offset, if any.
    pub fn fetch(&self, group: &str, tp: &TopicPartition) -> Option<u64> {
        self.committed
            .read()
            .get(&(group.to_string(), tp.clone()))
            .copied()
    }

    /// Drop all commits of a group (used when simulating group resets).
    pub fn reset_group(&self, group: &str) {
        self.committed.write().retain(|(g, _), _| g != group);
    }

    /// All commits of a group, sorted by topic-partition for determinism.
    pub fn group_commits(&self, group: &str) -> Vec<(TopicPartition, u64)> {
        let mut out: Vec<(TopicPartition, u64)> = self
            .committed
            .read()
            .iter()
            .filter(|((g, _), _)| g == group)
            .map(|((_, tp), off)| (tp.clone(), *off))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_fetch_roundtrip() {
        let s = OffsetStore::new();
        let tp = TopicPartition::new("t", 0);
        assert_eq!(s.fetch("g", &tp), None);
        s.commit("g", tp.clone(), 42);
        assert_eq!(s.fetch("g", &tp), Some(42));
        s.commit("g", tp.clone(), 43);
        assert_eq!(s.fetch("g", &tp), Some(43));
    }

    #[test]
    fn groups_are_isolated() {
        let s = OffsetStore::new();
        let tp = TopicPartition::new("t", 0);
        s.commit("g1", tp.clone(), 1);
        s.commit("g2", tp.clone(), 2);
        assert_eq!(s.fetch("g1", &tp), Some(1));
        assert_eq!(s.fetch("g2", &tp), Some(2));
        s.reset_group("g1");
        assert_eq!(s.fetch("g1", &tp), None);
        assert_eq!(s.fetch("g2", &tp), Some(2));
    }

    #[test]
    fn group_commits_sorted() {
        let s = OffsetStore::new();
        s.commit("g", TopicPartition::new("t", 2), 20);
        s.commit("g", TopicPartition::new("t", 0), 5);
        let commits = s.group_commits("g");
        assert_eq!(
            commits,
            vec![
                (TopicPartition::new("t", 0), 5),
                (TopicPartition::new("t", 2), 20)
            ]
        );
    }
}
