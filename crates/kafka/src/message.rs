//! Messages and topic-partition addressing.

use bytes::Bytes;
use std::fmt;

/// A message as handed to the broker by a producer.
///
/// Mirrors a Kafka record: an optional key (used for partitioning and
/// compaction-style semantics), an opaque value, and an event timestamp in
/// milliseconds. SamzaSQL requires the event timestamp to be present in the
/// *tuple* as well (§3.1); the envelope-level timestamp here corresponds to
/// Kafka's record timestamp and is what the broker indexes retention on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Optional partitioning key.
    pub key: Option<Bytes>,
    /// Opaque payload.
    pub value: Bytes,
    /// Event-time timestamp in milliseconds since the epoch (or since the
    /// start of a simulated timeline — the broker only compares these values).
    pub timestamp: i64,
}

impl Message {
    /// Create an un-keyed message with timestamp 0.
    pub fn new(value: impl Into<Bytes>) -> Self {
        Message {
            key: None,
            value: value.into(),
            timestamp: 0,
        }
    }

    /// Create a keyed message with timestamp 0.
    pub fn keyed(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        Message {
            key: Some(key.into()),
            value: value.into(),
            timestamp: 0,
        }
    }

    /// Attach an event timestamp (builder style).
    pub fn at(mut self, timestamp: i64) -> Self {
        self.timestamp = timestamp;
        self
    }

    /// Total payload size in bytes (key + value), used for size-based
    /// retention and throttling accounting.
    pub fn payload_len(&self) -> usize {
        self.key.as_ref().map_or(0, |k| k.len()) + self.value.len()
    }
}

/// Identifies one partition of one topic, like Kafka's `TopicPartition`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicPartition {
    pub topic: String,
    pub partition: u32,
}

impl TopicPartition {
    pub fn new(topic: impl Into<String>, partition: u32) -> Self {
        TopicPartition {
            topic: topic.into(),
            partition,
        }
    }
}

impl fmt::Display for TopicPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.topic, self.partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_builders() {
        let m = Message::keyed("k", "v").at(42);
        assert_eq!(m.key.as_deref(), Some(b"k".as_ref()));
        assert_eq!(m.value.as_ref(), b"v");
        assert_eq!(m.timestamp, 42);
        assert_eq!(m.payload_len(), 2);
    }

    #[test]
    fn unkeyed_message_len() {
        let m = Message::new("hello");
        assert_eq!(m.payload_len(), 5);
        assert!(m.key.is_none());
    }

    #[test]
    fn topic_partition_display_and_ord() {
        let a = TopicPartition::new("orders", 0);
        let b = TopicPartition::new("orders", 1);
        assert!(a < b);
        assert_eq!(a.to_string(), "orders-0");
    }
}
