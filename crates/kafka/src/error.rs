//! Error types for the broker substrate.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, KafkaError>;

/// Errors surfaced by broker, producer, and consumer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KafkaError {
    /// The referenced topic does not exist on the broker.
    UnknownTopic(String),
    /// The referenced partition index is out of range for the topic.
    UnknownPartition { topic: String, partition: u32 },
    /// A topic with this name already exists.
    TopicExists(String),
    /// The requested offset is below the log start (it was retained away) or
    /// past the log end.
    OffsetOutOfRange {
        topic: String,
        partition: u32,
        requested: u64,
        start: u64,
        end: u64,
    },
    /// Produce was rejected because not enough in-sync replicas acknowledged.
    NotEnoughReplicas { topic: String, partition: u32 },
    /// A consumer-group operation referenced an unknown group or member.
    UnknownGroup(String),
    /// A group member attempted an operation with a stale generation id.
    StaleGeneration {
        group: String,
        expected: u64,
        actual: u64,
    },
    /// A group operation referenced a member the group no longer knows —
    /// typically because its coordination session expired and it was evicted.
    UnknownMember { group: String, member: String },
    /// The coordination service rejected an operation.
    Coordination(String),
    /// Invalid configuration value.
    InvalidConfig(String),
}

impl fmt::Display for KafkaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KafkaError::UnknownTopic(t) => write!(f, "unknown topic: {t}"),
            KafkaError::UnknownPartition { topic, partition } => {
                write!(f, "unknown partition {partition} of topic {topic}")
            }
            KafkaError::TopicExists(t) => write!(f, "topic already exists: {t}"),
            KafkaError::OffsetOutOfRange { topic, partition, requested, start, end } => write!(
                f,
                "offset {requested} out of range for {topic}-{partition} (log spans [{start}, {end}))"
            ),
            KafkaError::NotEnoughReplicas { topic, partition } => {
                write!(f, "not enough in-sync replicas for {topic}-{partition}")
            }
            KafkaError::UnknownGroup(g) => write!(f, "unknown consumer group: {g}"),
            KafkaError::StaleGeneration { group, expected, actual } => write!(
                f,
                "stale generation for group {group}: expected {expected}, got {actual}"
            ),
            KafkaError::UnknownMember { group, member } => {
                write!(f, "unknown member {member} of group {group}")
            }
            KafkaError::Coordination(msg) => write!(f, "coordination: {msg}"),
            KafkaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for KafkaError {}
