//! Error types for the broker substrate.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, KafkaError>;

/// The broker operation an injected fault intercepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultOp {
    Produce,
    Fetch,
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOp::Produce => write!(f, "produce"),
            FaultOp::Fetch => write!(f, "fetch"),
        }
    }
}

/// Errors surfaced by broker, producer, and consumer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KafkaError {
    /// The referenced topic does not exist on the broker.
    UnknownTopic(String),
    /// The referenced partition index is out of range for the topic.
    UnknownPartition { topic: String, partition: u32 },
    /// A topic with this name already exists.
    TopicExists(String),
    /// The requested offset is below the log start (it was retained away) or
    /// past the log end.
    OffsetOutOfRange {
        topic: String,
        partition: u32,
        requested: u64,
        start: u64,
        end: u64,
    },
    /// Produce was rejected because not enough in-sync replicas acknowledged.
    NotEnoughReplicas { topic: String, partition: u32 },
    /// The partition's leader failed and a successor election is still in
    /// progress; the `epoch` is the one the next leader will serve under.
    LeaderNotAvailable {
        topic: String,
        partition: u32,
        epoch: u64,
    },
    /// The partition is administratively unavailable (injected outage).
    PartitionUnavailable { topic: String, partition: u32 },
    /// A transient broker failure injected by the fault injector.
    InjectedFault {
        op: FaultOp,
        topic: String,
        partition: u32,
    },
    /// A retried operation exhausted its attempt/budget limits; `last` is the
    /// final retriable error observed.
    RetriesExhausted {
        attempts: u32,
        last: Box<KafkaError>,
    },
    /// A consumer-group operation referenced an unknown group or member.
    UnknownGroup(String),
    /// A group member attempted an operation with a stale generation id.
    StaleGeneration {
        group: String,
        expected: u64,
        actual: u64,
    },
    /// A group operation referenced a member the group no longer knows —
    /// typically because its coordination session expired and it was evicted.
    UnknownMember { group: String, member: String },
    /// The coordination service rejected an operation.
    Coordination(String),
    /// Invalid configuration value.
    InvalidConfig(String),
}

impl KafkaError {
    /// Whether a client may retry the failed operation and reasonably expect
    /// it to succeed later. Retriable errors describe *transient* broker
    /// conditions (replication lag, elections in flight, injected outages);
    /// everything else is a permanent protocol or configuration error that a
    /// retry loop must surface immediately.
    pub fn is_retriable(&self) -> bool {
        match self {
            KafkaError::NotEnoughReplicas { .. }
            | KafkaError::LeaderNotAvailable { .. }
            | KafkaError::PartitionUnavailable { .. }
            | KafkaError::InjectedFault { .. } => true,
            KafkaError::UnknownTopic(_)
            | KafkaError::UnknownPartition { .. }
            | KafkaError::TopicExists(_)
            | KafkaError::OffsetOutOfRange { .. }
            | KafkaError::RetriesExhausted { .. }
            | KafkaError::UnknownGroup(_)
            | KafkaError::StaleGeneration { .. }
            | KafkaError::UnknownMember { .. }
            | KafkaError::Coordination(_)
            | KafkaError::InvalidConfig(_) => false,
        }
    }

    /// The topic-partition this error refers to, when it carries one — so
    /// retry loops and chaos assertions can report which partition stalled.
    pub fn topic_partition(&self) -> Option<(&str, u32)> {
        match self {
            KafkaError::UnknownPartition { topic, partition }
            | KafkaError::OffsetOutOfRange {
                topic, partition, ..
            }
            | KafkaError::NotEnoughReplicas { topic, partition }
            | KafkaError::LeaderNotAvailable {
                topic, partition, ..
            }
            | KafkaError::PartitionUnavailable { topic, partition }
            | KafkaError::InjectedFault {
                topic, partition, ..
            } => Some((topic.as_str(), *partition)),
            KafkaError::RetriesExhausted { last, .. } => last.topic_partition(),
            _ => None,
        }
    }
}

impl fmt::Display for KafkaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KafkaError::UnknownTopic(t) => write!(f, "unknown topic: {t}"),
            KafkaError::UnknownPartition { topic, partition } => {
                write!(f, "unknown partition {partition} of topic {topic}")
            }
            KafkaError::TopicExists(t) => write!(f, "topic already exists: {t}"),
            KafkaError::OffsetOutOfRange { topic, partition, requested, start, end } => write!(
                f,
                "offset {requested} out of range for {topic}-{partition} (log spans [{start}, {end}))"
            ),
            KafkaError::NotEnoughReplicas { topic, partition } => {
                write!(f, "not enough in-sync replicas for {topic}-{partition}")
            }
            KafkaError::LeaderNotAvailable { topic, partition, epoch } => write!(
                f,
                "leader of {topic}-{partition} not available (election toward epoch {epoch})"
            ),
            KafkaError::PartitionUnavailable { topic, partition } => {
                write!(f, "partition {topic}-{partition} unavailable")
            }
            KafkaError::InjectedFault { op, topic, partition } => {
                write!(f, "injected transient {op} fault on {topic}-{partition}")
            }
            KafkaError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            KafkaError::UnknownGroup(g) => write!(f, "unknown consumer group: {g}"),
            KafkaError::StaleGeneration { group, expected, actual } => write!(
                f,
                "stale generation for group {group}: expected {expected}, got {actual}"
            ),
            KafkaError::UnknownMember { group, member } => {
                write!(f, "unknown member {member} of group {group}")
            }
            KafkaError::Coordination(msg) => write!(f, "coordination: {msg}"),
            KafkaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for KafkaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retriable_classification_covers_transients() {
        assert!(KafkaError::NotEnoughReplicas {
            topic: "t".into(),
            partition: 0
        }
        .is_retriable());
        assert!(KafkaError::LeaderNotAvailable {
            topic: "t".into(),
            partition: 0,
            epoch: 1
        }
        .is_retriable());
        assert!(KafkaError::PartitionUnavailable {
            topic: "t".into(),
            partition: 0
        }
        .is_retriable());
        assert!(KafkaError::InjectedFault {
            op: FaultOp::Produce,
            topic: "t".into(),
            partition: 0
        }
        .is_retriable());
        assert!(!KafkaError::UnknownTopic("t".into()).is_retriable());
        assert!(!KafkaError::RetriesExhausted {
            attempts: 3,
            last: Box::new(KafkaError::PartitionUnavailable {
                topic: "t".into(),
                partition: 0
            })
        }
        .is_retriable());
    }

    #[test]
    fn errors_carry_partition_context() {
        let e = KafkaError::NotEnoughReplicas {
            topic: "orders".into(),
            partition: 3,
        };
        assert_eq!(e.topic_partition(), Some(("orders", 3)));
        let wrapped = KafkaError::RetriesExhausted {
            attempts: 5,
            last: Box::new(e),
        };
        assert_eq!(wrapped.topic_partition(), Some(("orders", 3)));
        assert_eq!(KafkaError::UnknownGroup("g".into()).topic_partition(), None);
    }
}
