//! Broker-side throughput counters.
//!
//! All counters are relaxed atomics: they are monotonically increasing
//! statistics sampled by the benchmark harness, never used for
//! synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing broker traffic.
#[derive(Debug, Default)]
pub struct BrokerMetrics {
    messages_in: AtomicU64,
    bytes_in: AtomicU64,
    messages_out: AtomicU64,
    bytes_out: AtomicU64,
    isr_shrinks: AtomicU64,
    isr_expands: AtomicU64,
    leader_epoch_bumps: AtomicU64,
    faults_injected: AtomicU64,
}

impl BrokerMetrics {
    pub fn record_produce(&self, messages: u64, bytes: u64) {
        self.messages_in.fetch_add(messages, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn record_fetch(&self, messages: u64, bytes: u64) {
        self.messages_out.fetch_add(messages, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record ISR membership transitions observed by a replication tick or
    /// an administrative follower failure.
    pub fn record_isr_delta(&self, shrank: u64, expanded: u64) {
        if shrank > 0 {
            self.isr_shrinks.fetch_add(shrank, Ordering::Relaxed);
        }
        if expanded > 0 {
            self.isr_expands.fetch_add(expanded, Ordering::Relaxed);
        }
    }

    /// Record a leader failover (epoch bump) on some partition.
    pub fn record_leader_epoch_bump(&self) {
        self.leader_epoch_bumps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a fault-injector decision that surfaced an error to a client.
    pub fn record_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    pub fn messages_in(&self) -> u64 {
        self.messages_in.load(Ordering::Relaxed)
    }

    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    pub fn messages_out(&self) -> u64 {
        self.messages_out.load(Ordering::Relaxed)
    }

    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    pub fn isr_shrinks(&self) -> u64 {
        self.isr_shrinks.load(Ordering::Relaxed)
    }

    pub fn isr_expands(&self) -> u64 {
        self.isr_expands.load(Ordering::Relaxed)
    }

    pub fn leader_epoch_bumps(&self) -> u64 {
        self.leader_epoch_bumps.load(Ordering::Relaxed)
    }

    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// Snapshot of the four traffic counters (in-messages, in-bytes,
    /// out-messages, out-bytes).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.messages_in(),
            self.bytes_in(),
            self.messages_out(),
            self.bytes_out(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = BrokerMetrics::default();
        m.record_produce(2, 200);
        m.record_produce(1, 100);
        m.record_fetch(3, 300);
        assert_eq!(m.snapshot(), (3, 300, 3, 300));
    }

    #[test]
    fn fault_counters_accumulate() {
        let m = BrokerMetrics::default();
        m.record_isr_delta(2, 1);
        m.record_isr_delta(0, 0);
        m.record_leader_epoch_bump();
        m.record_fault_injected();
        m.record_fault_injected();
        assert_eq!(m.isr_shrinks(), 2);
        assert_eq!(m.isr_expands(), 1);
        assert_eq!(m.leader_epoch_bumps(), 1);
        assert_eq!(m.faults_injected(), 2);
    }
}
