//! Broker-side throughput counters.
//!
//! All counters are relaxed atomics: they are monotonically increasing
//! statistics sampled by the benchmark harness, never used for
//! synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing broker traffic.
#[derive(Debug, Default)]
pub struct BrokerMetrics {
    messages_in: AtomicU64,
    bytes_in: AtomicU64,
    messages_out: AtomicU64,
    bytes_out: AtomicU64,
}

impl BrokerMetrics {
    pub fn record_produce(&self, messages: u64, bytes: u64) {
        self.messages_in.fetch_add(messages, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn record_fetch(&self, messages: u64, bytes: u64) {
        self.messages_out.fetch_add(messages, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn messages_in(&self) -> u64 {
        self.messages_in.load(Ordering::Relaxed)
    }

    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    pub fn messages_out(&self) -> u64 {
        self.messages_out.load(Ordering::Relaxed)
    }

    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Snapshot of all four counters (in-messages, in-bytes, out-messages,
    /// out-bytes).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.messages_in(),
            self.bytes_in(),
            self.messages_out(),
            self.bytes_out(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = BrokerMetrics::default();
        m.record_produce(2, 200);
        m.record_produce(1, 100);
        m.record_fetch(3, 300);
        assert_eq!(m.snapshot(), (3, 300, 3, 300));
    }
}
