//! Broker-side throughput counters.
//!
//! Since the obs migration these are thin shims over [`samzasql_obs`]
//! counters: the accessor API is unchanged, but every counter can be
//! adopted into a shared [`MetricsRegistry`] (see
//! [`BrokerMetrics::register_into`]) so the broker publishes into the same
//! snapshot/exporter pipeline as the rest of the stack. Counters remain
//! relaxed atomics: monotonically increasing statistics sampled by the
//! benchmark harness, never used for synchronization.

use samzasql_obs::{Counter, MetricsRegistry};

/// Monotonic counters describing broker traffic.
#[derive(Debug, Clone, Default)]
pub struct BrokerMetrics {
    messages_in: Counter,
    bytes_in: Counter,
    messages_out: Counter,
    bytes_out: Counter,
    isr_shrinks: Counter,
    isr_expands: Counter,
    leader_epoch_bumps: Counter,
    faults_injected: Counter,
}

impl BrokerMetrics {
    /// Publish every counter into `registry` under `kafka.broker.*` with
    /// the given identity labels. The registry adopts the live handles, so
    /// subsequent broker traffic is visible in registry snapshots.
    pub fn register_into(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        registry.adopt_counter("kafka.broker.messages_in", labels, &self.messages_in);
        registry.adopt_counter("kafka.broker.bytes_in", labels, &self.bytes_in);
        registry.adopt_counter("kafka.broker.messages_out", labels, &self.messages_out);
        registry.adopt_counter("kafka.broker.bytes_out", labels, &self.bytes_out);
        registry.adopt_counter("kafka.broker.isr_shrinks", labels, &self.isr_shrinks);
        registry.adopt_counter("kafka.broker.isr_expands", labels, &self.isr_expands);
        registry.adopt_counter(
            "kafka.broker.leader_epoch_bumps",
            labels,
            &self.leader_epoch_bumps,
        );
        registry.adopt_counter(
            "kafka.broker.faults_injected",
            labels,
            &self.faults_injected,
        );
    }

    pub fn record_produce(&self, messages: u64, bytes: u64) {
        self.messages_in.add(messages);
        self.bytes_in.add(bytes);
    }

    pub fn record_fetch(&self, messages: u64, bytes: u64) {
        self.messages_out.add(messages);
        self.bytes_out.add(bytes);
    }

    /// Record ISR membership transitions observed by a replication tick or
    /// an administrative follower failure.
    pub fn record_isr_delta(&self, shrank: u64, expanded: u64) {
        if shrank > 0 {
            self.isr_shrinks.add(shrank);
        }
        if expanded > 0 {
            self.isr_expands.add(expanded);
        }
    }

    /// Record a leader failover (epoch bump) on some partition.
    pub fn record_leader_epoch_bump(&self) {
        self.leader_epoch_bumps.inc();
    }

    /// Record a fault-injector decision that surfaced an error to a client.
    pub fn record_fault_injected(&self) {
        self.faults_injected.inc();
    }

    pub fn messages_in(&self) -> u64 {
        self.messages_in.get()
    }

    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.get()
    }

    pub fn messages_out(&self) -> u64 {
        self.messages_out.get()
    }

    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.get()
    }

    pub fn isr_shrinks(&self) -> u64 {
        self.isr_shrinks.get()
    }

    pub fn isr_expands(&self) -> u64 {
        self.isr_expands.get()
    }

    pub fn leader_epoch_bumps(&self) -> u64 {
        self.leader_epoch_bumps.get()
    }

    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.get()
    }

    /// Snapshot of the four traffic counters (in-messages, in-bytes,
    /// out-messages, out-bytes).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.messages_in(),
            self.bytes_in(),
            self.messages_out(),
            self.bytes_out(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = BrokerMetrics::default();
        m.record_produce(2, 200);
        m.record_produce(1, 100);
        m.record_fetch(3, 300);
        assert_eq!(m.snapshot(), (3, 300, 3, 300));
    }

    #[test]
    fn fault_counters_accumulate() {
        let m = BrokerMetrics::default();
        m.record_isr_delta(2, 1);
        m.record_isr_delta(0, 0);
        m.record_leader_epoch_bump();
        m.record_fault_injected();
        m.record_fault_injected();
        assert_eq!(m.isr_shrinks(), 2);
        assert_eq!(m.isr_expands(), 1);
        assert_eq!(m.leader_epoch_bumps(), 1);
        assert_eq!(m.faults_injected(), 2);
    }

    #[test]
    fn registered_counters_publish_live_traffic() {
        let m = BrokerMetrics::default();
        let registry = MetricsRegistry::new();
        m.register_into(&registry, &[("broker", "0")]);
        m.record_produce(4, 400);
        let snap = registry.snapshot_prefix("kafka.broker.");
        assert_eq!(
            snap.counter("kafka.broker.messages_in", &[("broker", "0")]),
            Some(4)
        );
        assert_eq!(
            snap.counter("kafka.broker.bytes_in", &[("broker", "0")]),
            Some(400)
        );
    }
}
