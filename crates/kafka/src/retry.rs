//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! Every client of the broker — producers, consumers, the checkpoint
//! manager, changelog flushes — routes its broker calls through a
//! [`Retrier`], which retries errors that [`KafkaError::is_retriable`]
//! classifies as transient. Retries are *bounded twice*: by an attempt cap
//! and by a total backoff-time budget, so a permanently failing partition
//! surfaces [`KafkaError::RetriesExhausted`] instead of hanging.
//!
//! Time is injectable through the [`Clock`] trait. The default
//! [`VirtualClock`] advances a logical counter instead of sleeping, which
//! keeps chaos tests fast and deterministic; [`SystemClock`] really sleeps
//! for callers that want wall-clock pacing.

use crate::error::{KafkaError, Result};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Injectable time source for backoff pacing.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Milliseconds elapsed on this clock.
    fn now_ms(&self) -> u64;
    /// Wait for `ms` milliseconds (logically or really).
    fn sleep_ms(&self, ms: u64);
}

/// Logical clock: `sleep_ms` advances the counter and yields the thread once
/// (so spinning retry loops still make scheduling progress) without paying
/// wall-clock time. This is the default everywhere.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> Self {
        VirtualClock::default()
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    fn sleep_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
        std::thread::yield_now();
    }
}

/// Wall clock: `sleep_ms` really sleeps.
#[derive(Debug)]
pub struct SystemClock {
    start: std::time::Instant,
}

impl SystemClock {
    pub fn new() -> Self {
        SystemClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Retry configuration: exponential backoff with deterministic jitter,
/// capped by attempts and by a total backoff budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Ceiling for any single backoff.
    pub max_backoff_ms: u64,
    /// Fraction of each backoff randomized away (0.0 = none, 0.5 = up to
    /// half). Jitter is a pure function of `seed` and the attempt number, so
    /// a fixed seed reproduces the exact backoff schedule.
    pub jitter: f64,
    /// Total backoff budget in milliseconds (0 = attempts cap only). Once
    /// cumulative backoff would exceed this, the retrier gives up.
    pub budget_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries at all: the first error is returned verbatim.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            jitter: 0.0,
            budget_ms: 0,
            seed: 0,
        }
    }

    /// The stack-wide default: enough attempts to ride out a leader election
    /// or a short injected outage, bounded tightly so permanent failures
    /// surface fast.
    pub fn default_client() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 1,
            max_backoff_ms: 64,
            jitter: 0.5,
            budget_ms: 1_000,
            seed: 0x5a5a_5a5a,
        }
    }

    /// Builder-style seed override (chaos scenarios pin this).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style attempt-cap override.
    pub fn attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// The backoff (ms) before retry number `attempt` (1-based). Exponential
    /// doubling from `base_backoff_ms`, capped at `max_backoff_ms`, with the
    /// jitter fraction deterministically subtracted.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .base_backoff_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ms.max(self.base_backoff_ms));
        if raw == 0 || self.jitter <= 0.0 {
            return raw;
        }
        let jitter_span = ((raw as f64) * self.jitter.clamp(0.0, 1.0)) as u64;
        if jitter_span == 0 {
            return raw;
        }
        let h = splitmix64(self.seed ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        raw - (h % (jitter_span + 1))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::default_client()
    }
}

/// SplitMix64: the deterministic hash behind jitter and fault schedules.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shared retry counters, cloneable so one metrics sink can span a
/// container's producer, consumer, checkpoint, and changelog retriers.
///
/// Backed by [`samzasql_obs`] instruments since the obs migration: the
/// accessors are unchanged, and [`RetryMetrics::register_into`] adopts the
/// live counters (plus a per-retry backoff histogram) into a shared
/// registry under `kafka.retry.*`.
#[derive(Debug, Clone, Default)]
pub struct RetryMetrics {
    retries: samzasql_obs::Counter,
    giveups: samzasql_obs::Counter,
    backoff_ms: samzasql_obs::Counter,
    backoff_hist_ms: samzasql_obs::Histogram,
}

impl RetryMetrics {
    /// Publish the retry counters into `registry` under `kafka.retry.*`
    /// with the given identity labels.
    pub fn register_into(&self, registry: &samzasql_obs::MetricsRegistry, labels: &[(&str, &str)]) {
        registry.adopt_counter("kafka.retry.retries", labels, &self.retries);
        registry.adopt_counter("kafka.retry.giveups", labels, &self.giveups);
        registry.adopt_counter("kafka.retry.backoff_ms", labels, &self.backoff_ms);
        registry.adopt_histogram("kafka.retry.backoff_hist_ms", labels, &self.backoff_hist_ms);
    }

    /// Retried attempts (each backoff-then-try counts once).
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Operations abandoned after exhausting attempts or budget.
    pub fn giveups(&self) -> u64 {
        self.giveups.get()
    }

    /// Cumulative backoff time (ms) across all retries.
    pub fn backoff_ms(&self) -> u64 {
        self.backoff_ms.get()
    }

    fn record_retry(&self, backoff: u64) {
        self.retries.inc();
        self.backoff_ms.add(backoff);
        self.backoff_hist_ms.record(backoff);
    }

    fn record_giveup(&self) {
        self.giveups.inc();
    }
}

/// A policy bound to a clock and a metrics sink: the object clients actually
/// hold and call [`run`](Retrier::run) on.
#[derive(Debug, Clone)]
pub struct Retrier {
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    metrics: RetryMetrics,
}

impl Retrier {
    /// A retrier over the given policy with a fresh virtual clock.
    pub fn new(policy: RetryPolicy) -> Self {
        Retrier {
            policy,
            clock: Arc::new(VirtualClock::new()),
            metrics: RetryMetrics::default(),
        }
    }

    /// A retrier that never retries (first error wins).
    pub fn disabled() -> Self {
        Retrier::new(RetryPolicy::disabled())
    }

    /// Override the clock (builder style).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Share an existing metrics sink (builder style).
    pub fn with_metrics(mut self, metrics: RetryMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    pub fn metrics(&self) -> &RetryMetrics {
        &self.metrics
    }

    /// Run `f`, retrying retriable errors per the policy. Non-retriable
    /// errors return immediately; exhaustion returns
    /// [`KafkaError::RetriesExhausted`] wrapping the last transient error.
    pub fn run<T>(&self, mut f: impl FnMut() -> Result<T>) -> Result<T> {
        let mut attempt = 0u32;
        let mut spent_ms = 0u64;
        loop {
            attempt += 1;
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if !e.is_retriable() => return Err(e),
                Err(e) => {
                    if attempt >= self.policy.max_attempts {
                        if attempt == 1 {
                            // Retries disabled: first error wins, verbatim.
                            return Err(e);
                        }
                        self.metrics.record_giveup();
                        return Err(KafkaError::RetriesExhausted {
                            attempts: attempt,
                            last: Box::new(e),
                        });
                    }
                    let backoff = self.policy.backoff_ms(attempt);
                    if self.policy.budget_ms > 0 && spent_ms + backoff > self.policy.budget_ms {
                        self.metrics.record_giveup();
                        return Err(KafkaError::RetriesExhausted {
                            attempts: attempt,
                            last: Box::new(e),
                        });
                    }
                    spent_ms += backoff;
                    self.metrics.record_retry(backoff);
                    self.clock.sleep_ms(backoff);
                }
            }
        }
    }
}

impl Default for Retrier {
    fn default() -> Self {
        Retrier::new(RetryPolicy::default_client())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn transient() -> KafkaError {
        KafkaError::PartitionUnavailable {
            topic: "t".into(),
            partition: 0,
        }
    }

    #[test]
    fn succeeds_after_transient_errors() {
        let r = Retrier::new(RetryPolicy::default_client());
        let left = Cell::new(3u32);
        let out: Result<u32> = r.run(|| {
            if left.get() > 0 {
                left.set(left.get() - 1);
                Err(transient())
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(r.metrics().retries(), 3);
        assert_eq!(r.metrics().giveups(), 0);
    }

    #[test]
    fn non_retriable_returns_immediately() {
        let r = Retrier::new(RetryPolicy::default_client());
        let calls = Cell::new(0u32);
        let out: Result<()> = r.run(|| {
            calls.set(calls.get() + 1);
            Err(KafkaError::UnknownTopic("t".into()))
        });
        assert!(matches!(out, Err(KafkaError::UnknownTopic(_))));
        assert_eq!(calls.get(), 1);
        assert_eq!(r.metrics().retries(), 0);
    }

    #[test]
    fn attempts_are_bounded() {
        let r = Retrier::new(RetryPolicy::default_client().attempts(4));
        let calls = Cell::new(0u32);
        let out: Result<()> = r.run(|| {
            calls.set(calls.get() + 1);
            Err(transient())
        });
        match out {
            Err(KafkaError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 4);
                assert!(last.is_retriable());
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(calls.get(), 4, "exactly max_attempts calls, no spin");
        assert_eq!(r.metrics().giveups(), 1);
    }

    #[test]
    fn budget_bounds_total_backoff() {
        let policy = RetryPolicy {
            max_attempts: 1_000_000,
            base_backoff_ms: 10,
            max_backoff_ms: 10,
            jitter: 0.0,
            budget_ms: 45,
            seed: 1,
        };
        let r = Retrier::new(policy);
        let calls = Cell::new(0u32);
        let out: Result<()> = r.run(|| {
            calls.set(calls.get() + 1);
            Err(transient())
        });
        assert!(matches!(out, Err(KafkaError::RetriesExhausted { .. })));
        // 4 backoffs of 10ms fit a 45ms budget; the 5th would exceed it.
        assert_eq!(calls.get(), 5);
        assert_eq!(r.metrics().backoff_ms(), 40);
    }

    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let p = RetryPolicy::default_client().seed(42);
        let a: Vec<u64> = (1..8).map(|i| p.backoff_ms(i)).collect();
        let b: Vec<u64> = (1..8).map(|i| p.backoff_ms(i)).collect();
        assert_eq!(a, b);
        let other = RetryPolicy::default_client().seed(43);
        let c: Vec<u64> = (1..8).map(|i| other.backoff_ms(i)).collect();
        assert_ne!(a, c, "different seeds jitter differently");
        // Exponential shape survives jitter: later caps at max_backoff_ms.
        assert!(a.iter().all(|&d| d <= 64));
    }

    #[test]
    fn virtual_clock_does_not_wall_sleep() {
        let start = std::time::Instant::now();
        let clock = VirtualClock::new();
        clock.sleep_ms(10_000);
        assert_eq!(clock.now_ms(), 10_000);
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
    }
}
