//! Validation: name resolution, type checking, STREAM-keyword semantics, and
//! AST → logical plan conversion.
//!
//! Dialect rules implemented here, with their paper anchors:
//!
//! * `SELECT STREAM` marks a continuous query; without it a stream is read
//!   as "a table consisting of the history of the stream up to the point of
//!   execution" (§3.3) — a bounded scan.
//! * `STREAM` inside subqueries/views "has no effect. The query planner
//!   discards the STREAM keyword and figures out whether the relations
//!   referenced can be converted to streams or not" (§3.3): stream-ness is
//!   inherited from the outermost query.
//! * `TUMBLE`/`HOP` group-by windows with `START`/`END` bound aggregates
//!   (§3.6); `retain` need not be a multiple of `emit`.
//! * Analytic `OVER` sliding windows; the ORDER BY column must be the
//!   stream's timestamp (§3.7, monotonicity assumption in §3.8.1).
//! * Stream-to-stream joins carry their window in the join condition
//!   (§3.8.1); equi keys and bounds are extracted here.
//! * A projection that drops the timestamp column triggers a planner
//!   warning — §7 lists these warnings as future work; we implement them.

use crate::catalog::{Catalog, ObjectKind};
use crate::error::{PlanError, Result};
use crate::logical::{AggCall, AggFunc, GroupWindow, LogicalPlan, TimeBound};
use crate::types::{arithmetic_type, is_numeric, BinOp, ScalarExpr, ScalarFunc};
use samzasql_parser::ast::{
    BinaryOp, Expr, FrameBound, FrameUnits, Literal, Query, SelectItem, TableRef, UnaryOp,
    WindowSpec,
};
use samzasql_serde::{Schema, Value};

/// A validated query: the logical plan plus planner warnings.
#[derive(Debug, Clone)]
pub struct Validation {
    pub plan: LogicalPlan,
    pub warnings: Vec<String>,
    /// True when the query is continuous (outermost SELECT STREAM).
    pub is_stream: bool,
    /// ORDER BY keys resolved over the plan's output (bounded queries only).
    pub order_by: Vec<(ScalarExpr, bool)>,
    /// LIMIT for bounded queries.
    pub limit: Option<u64>,
}

/// One visible column during name resolution.
#[derive(Debug, Clone)]
struct ScopeColumn {
    qualifier: Option<String>,
    name: String,
    ty: Schema,
}

/// The set of visible columns for expression resolution.
#[derive(Debug, Clone, Default)]
struct Scope {
    columns: Vec<ScopeColumn>,
}

impl Scope {
    fn from_plan(plan: &LogicalPlan, qualifier: Option<&str>) -> Scope {
        let names = plan.output_names();
        let types = plan.output_types();
        Scope {
            columns: names
                .into_iter()
                .zip(types)
                .map(|(name, ty)| ScopeColumn {
                    qualifier: qualifier.map(|q| q.to_string()),
                    name,
                    ty,
                })
                .collect(),
        }
    }

    fn concat(mut self, other: Scope) -> Scope {
        self.columns.extend(other.columns);
        self
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<(usize, Schema)> {
        let mut hits = self.columns.iter().enumerate().filter(|(_, c)| {
            c.name.eq_ignore_ascii_case(name)
                && match qualifier {
                    Some(q) => c
                        .qualifier
                        .as_deref()
                        .is_some_and(|cq| cq.eq_ignore_ascii_case(q)),
                    None => true,
                }
        });
        let first = hits.next();
        let second = hits.next();
        match (first, second) {
            (Some((i, c)), None) => Ok((i, c.ty.clone())),
            (Some(_), Some(_)) => Err(PlanError::AmbiguousColumn(name.to_string())),
            (None, _) => Err(PlanError::UnknownColumn {
                column: match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.to_string(),
                },
                scope: self
                    .columns
                    .iter()
                    .map(|c| c.name.clone())
                    .collect::<Vec<_>>()
                    .join(", "),
            }),
        }
    }
}

/// Validate a query against a catalog.
pub fn validate_query(query: &Query, catalog: &Catalog) -> Result<Validation> {
    let mut v = Validator {
        catalog,
        warnings: Vec::new(),
    };
    let is_stream = query.stream;
    let plan = v.query_plan(query, is_stream)?;
    // Timestamp-propagation warning (§7): streaming plans whose output lost
    // the event-time column cannot feed further time-based windows.
    if is_stream && plan.timestamp_index().is_none() {
        v.warnings.push(
            "output drops the event timestamp column; time-based window \
             aggregations on the derived stream will not be possible"
                .to_string(),
        );
    }
    // Resolve top-level ORDER BY over the plan's output space (already
    // rejected for streams inside query_plan).
    let out_scope = Scope::from_plan(&plan, None);
    let mut order_by = Vec::new();
    for (e, asc) in &query.order_by {
        order_by.push((v.resolve(e, &out_scope)?, *asc));
    }
    Ok(Validation {
        plan,
        warnings: v.warnings,
        is_stream,
        order_by,
        limit: query.limit,
    })
}

struct Validator<'a> {
    catalog: &'a Catalog,
    warnings: Vec<String>,
}

impl<'a> Validator<'a> {
    // ------------------------------------------------------------- queries

    fn query_plan(&mut self, query: &Query, streaming: bool) -> Result<LogicalPlan> {
        let (mut plan, scope) = self.from_clause(&query.from, streaming)?;

        // WHERE
        if let Some(pred) = &query.where_clause {
            let predicate = self.resolve(pred, &scope)?;
            if predicate.ty() != Schema::Boolean {
                return Err(PlanError::Type(format!(
                    "WHERE predicate must be boolean, got {}",
                    predicate.ty().type_name()
                )));
            }
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        let has_aggregates = !query.group_by.is_empty()
            || query
                .projections
                .iter()
                .any(|p| matches!(p, SelectItem::Expr { expr, .. } if contains_aggregate(expr)));
        let has_over = query
            .projections
            .iter()
            .any(|p| matches!(p, SelectItem::Expr { expr, .. } if contains_over(expr)));

        if has_aggregates && has_over {
            return Err(PlanError::Unsupported(
                "mixing GROUP BY aggregates and OVER windows in one SELECT".into(),
            ));
        }

        if has_aggregates {
            plan = self.aggregate_query(query, plan, scope, streaming)?;
        } else if has_over {
            plan = self.sliding_window_query(query, plan, scope)?;
        } else {
            plan = self.plain_projection(query, plan, scope)?;
            if query.having.is_some() {
                return Err(PlanError::Semantic(
                    "HAVING requires GROUP BY or aggregates".into(),
                ));
            }
        }

        if query.distinct {
            if streaming {
                return Err(PlanError::Unsupported(
                    "SELECT DISTINCT on a stream (unbounded dedup state)".into(),
                ));
            }
            // Bounded DISTINCT = group by every output column.
            let names = plan.output_names();
            let types = plan.output_types();
            let keys: Vec<ScalarExpr> = types
                .iter()
                .enumerate()
                .map(|(i, t)| ScalarExpr::input(i, t.clone()))
                .collect();
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                window: GroupWindow::None,
                keys,
                key_names: names,
                aggs: vec![],
            };
        }

        if !query.order_by.is_empty() || query.limit.is_some() {
            if streaming {
                return Err(PlanError::Unsupported(
                    "ORDER BY / LIMIT on a continuous stream query".into(),
                ));
            }
            self.warnings
                .push("ORDER BY/LIMIT evaluated at end of bounded scan".to_string());
        }

        Ok(plan)
    }

    #[allow(clippy::wrong_self_convention)] // "FROM clause", not a conversion
    fn from_clause(&mut self, from: &TableRef, streaming: bool) -> Result<(LogicalPlan, Scope)> {
        match from {
            TableRef::Named { name, alias } => {
                let obj = self.catalog.get(name)?;
                let binding = alias.as_deref().unwrap_or(&obj.name).to_string();
                match obj.kind {
                    ObjectKind::View => {
                        let view = obj.view.clone().expect("view object has definition");
                        // STREAM inside views is ignored (§3.3); the view body
                        // inherits stream-ness from the outer query.
                        let mut plan = self.query_plan(&view.query, streaming)?;
                        if !view.columns.is_empty() {
                            let types = plan.output_types();
                            if view.columns.len() != types.len() {
                                return Err(PlanError::Semantic(format!(
                                    "view {} declares {} columns but its query produces {}",
                                    obj.name,
                                    view.columns.len(),
                                    types.len()
                                )));
                            }
                            let exprs: Vec<ScalarExpr> = types
                                .iter()
                                .enumerate()
                                .map(|(i, t)| ScalarExpr::input(i, t.clone()))
                                .collect();
                            plan = LogicalPlan::Project {
                                input: Box::new(plan),
                                exprs,
                                names: view.columns.clone(),
                            };
                        }
                        let scope = Scope::from_plan(&plan, Some(&binding));
                        Ok((plan, scope))
                    }
                    ObjectKind::Stream | ObjectKind::Table => {
                        let fields = obj.schema.fields().ok_or_else(|| {
                            PlanError::Catalog(format!("{} has a non-record schema", obj.name))
                        })?;
                        let names: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let types: Vec<Schema> = fields.iter().map(|f| f.schema.clone()).collect();
                        let ts_index = obj
                            .timestamp_field
                            .as_deref()
                            .and_then(|t| obj.schema.field_index(t));
                        let plan = LogicalPlan::Scan {
                            object: obj.name.clone(),
                            kind: obj.kind,
                            topic: obj.topic.clone().ok_or_else(|| {
                                PlanError::Catalog(format!("{} has no topic", obj.name))
                            })?,
                            names,
                            types,
                            // Tables are never continuous scans; streams are
                            // continuous exactly when the outer query streams.
                            stream: streaming && obj.kind == ObjectKind::Stream,
                            ts_index,
                        };
                        let scope = Scope::from_plan(&plan, Some(&binding));
                        Ok((plan, scope))
                    }
                }
            }
            TableRef::Subquery { query, alias } => {
                // Inner STREAM ignored; stream-ness inherited (§3.3).
                let plan = self.query_plan(query, streaming)?;
                let scope = Scope::from_plan(&plan, alias.as_deref());
                Ok((plan, scope))
            }
            TableRef::Join {
                left,
                right,
                kind,
                condition,
            } => {
                let (lplan, lscope) = self.from_clause(left, streaming)?;
                let (rplan, rscope) = self.from_clause(right, streaming)?;
                let larity = lplan.arity();
                let scope = lscope.concat(rscope);
                let cond = self.resolve(condition, &scope)?;
                let (equi, time_bound, residual) =
                    decompose_join_condition(&cond, larity, &lplan, &rplan)?;
                if equi.is_empty() {
                    return Err(PlanError::Unsupported(
                        "joins require at least one equality condition".into(),
                    ));
                }
                let plan = LogicalPlan::Join {
                    left: Box::new(lplan),
                    right: Box::new(rplan),
                    kind: *kind,
                    equi,
                    time_bound,
                    residual,
                };
                Ok((plan, scope))
            }
        }
    }

    // ----------------------------------------------------- plain projection

    fn plain_projection(
        &mut self,
        query: &Query,
        input: LogicalPlan,
        scope: Scope,
    ) -> Result<LogicalPlan> {
        // Pure `SELECT *` keeps the input as-is (scan already shapes it).
        if query.projections.len() == 1 && matches!(query.projections[0], SelectItem::Wildcard) {
            return Ok(input);
        }
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for item in &query.projections {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in scope.columns.iter().enumerate() {
                        exprs.push(ScalarExpr::input(i, c.ty.clone()));
                        names.push(c.name.clone());
                    }
                }
                SelectItem::QualifiedWildcard(rel) => {
                    let mut any = false;
                    for (i, c) in scope.columns.iter().enumerate() {
                        if c.qualifier
                            .as_deref()
                            .is_some_and(|q| q.eq_ignore_ascii_case(rel))
                        {
                            exprs.push(ScalarExpr::input(i, c.ty.clone()));
                            names.push(c.name.clone());
                            any = true;
                        }
                    }
                    if !any {
                        return Err(PlanError::UnknownRelation(rel.clone()));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let resolved = self.resolve(expr, &scope)?;
                    names.push(
                        alias
                            .clone()
                            .unwrap_or_else(|| derive_name(expr, exprs.len())),
                    );
                    exprs.push(resolved);
                }
            }
        }
        Ok(LogicalPlan::Project {
            input: Box::new(input),
            exprs,
            names,
        })
    }

    // --------------------------------------------------- aggregate queries

    fn aggregate_query(
        &mut self,
        query: &Query,
        input: LogicalPlan,
        scope: Scope,
        streaming: bool,
    ) -> Result<LogicalPlan> {
        // Split GROUP BY into a window spec and ordinary keys.
        let mut window = GroupWindow::None;
        let mut keys: Vec<ScalarExpr> = Vec::new();
        let mut key_names: Vec<String> = Vec::new();
        let mut key_sources: Vec<Expr> = Vec::new();
        for g in &query.group_by {
            match g {
                Expr::Function { name, args, .. }
                    if name.eq_ignore_ascii_case("TUMBLE") || name.eq_ignore_ascii_case("HOP") =>
                {
                    if window != GroupWindow::None {
                        return Err(PlanError::Semantic(
                            "at most one TUMBLE/HOP window per GROUP BY".into(),
                        ));
                    }
                    window = self.window_spec(name, args, &scope, &input)?;
                }
                other => {
                    let k = self.resolve(other, &scope)?;
                    key_names.push(derive_name(other, keys.len()));
                    keys.push(k);
                    key_sources.push(other.clone());
                }
            }
        }
        if streaming && window == GroupWindow::None {
            // Plain GROUP BY over an unbounded stream only terminates per
            // window; FLOOR(rowtime TO HOUR) keys act as an hourly tumbling
            // window (Listing 3), which the planner recognizes.
            let floor_key = keys
                .iter()
                .position(|k| matches!(k, ScalarExpr::FloorTime { .. }));
            match floor_key {
                Some(i) => {
                    let ScalarExpr::FloorTime { expr, unit_millis } = keys[i].clone() else {
                        unreachable!()
                    };
                    if let ScalarExpr::InputRef { index, .. } = *expr {
                        window = GroupWindow::Tumble {
                            ts_index: index,
                            size_ms: unit_millis,
                        };
                    }
                }
                None => {
                    return Err(PlanError::Unsupported(
                        "streaming GROUP BY requires a TUMBLE/HOP window or a \
                         FLOOR(ts TO unit) key"
                            .into(),
                    ));
                }
            }
        }

        // Resolve each projection into either a key reference or agg calls.
        let mut aggs: Vec<AggCall> = Vec::new();
        let mut out_exprs: Vec<ScalarExpr> = Vec::new();
        let mut out_names: Vec<String> = Vec::new();
        let key_count = keys.len();
        for item in &query.projections {
            let (expr, alias) = match item {
                SelectItem::Expr { expr, alias } => (expr, alias.clone()),
                _ => {
                    return Err(PlanError::Semantic(
                        "SELECT * is not valid with GROUP BY".into(),
                    ))
                }
            };
            let out = self.resolve_in_agg_context(
                expr, &scope, &keys, key_count, &mut aggs, &window, &input,
            )?;
            out_names.push(alias.unwrap_or_else(|| derive_name(expr, out_exprs.len())));
            out_exprs.push(out);
        }

        let agg_plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            window,
            keys,
            key_names: key_names.clone(),
            aggs: aggs.clone(),
        };

        // HAVING over the aggregate output space.
        let mut plan = agg_plan;
        if let Some(h) = &query.having {
            let agg_scope = Scope::from_plan(&plan, None);
            // HAVING may also name aggregates structurally (COUNT(*) > 2):
            // resolve against keys ++ agg outputs.
            let predicate = self.resolve_having(h, &agg_scope, &key_sources, &scope, &plan)?;
            if predicate.ty() != Schema::Boolean {
                return Err(PlanError::Type("HAVING predicate must be boolean".into()));
            }
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // Final projection arranging outputs.
        Ok(LogicalPlan::Project {
            input: Box::new(plan),
            exprs: out_exprs,
            names: out_names,
        })
    }

    fn window_spec(
        &mut self,
        name: &str,
        args: &[Expr],
        scope: &Scope,
        input: &LogicalPlan,
    ) -> Result<GroupWindow> {
        let ts_index = match args.first() {
            Some(e) => match self.resolve(e, scope)? {
                ScalarExpr::InputRef { index, ty } => {
                    if ty != Schema::Timestamp && ty != Schema::Long {
                        return Err(PlanError::Type(format!(
                            "{name} timestamp argument must be a timestamp column, got {}",
                            ty.type_name()
                        )));
                    }
                    index
                }
                _ => {
                    return Err(PlanError::Semantic(format!(
                        "{name}'s first argument must be a timestamp column"
                    )))
                }
            },
            None => return Err(PlanError::Semantic(format!("{name} requires arguments"))),
        };
        if input.timestamp_index() != Some(ts_index) {
            self.warnings.push(format!(
                "{name} is windowing on a column that is not the declared stream timestamp"
            ));
        }
        let interval_arg = |e: &Expr, what: &str| -> Result<i64> {
            match e {
                Expr::Literal(Literal::Interval { millis, .. }) => Ok(*millis),
                Expr::Literal(Literal::Time { millis, .. }) => Ok(*millis),
                other => Err(PlanError::Semantic(format!(
                    "{name} {what} must be an INTERVAL/TIME literal, got {other:?}"
                ))),
            }
        };
        if name.eq_ignore_ascii_case("TUMBLE") {
            if args.len() != 2 {
                return Err(PlanError::Semantic(
                    "TUMBLE(ts, size) takes 2 arguments".into(),
                ));
            }
            let size_ms = interval_arg(&args[1], "size")?;
            if size_ms <= 0 {
                return Err(PlanError::Semantic("TUMBLE size must be positive".into()));
            }
            Ok(GroupWindow::Tumble { ts_index, size_ms })
        } else {
            // HOP(ts, emit) | HOP(ts, emit, retain) | HOP(ts, emit, retain, align)
            if !(2..=4).contains(&args.len()) {
                return Err(PlanError::Semantic(
                    "HOP takes 2 to 4 arguments: HOP(ts, emit[, retain[, align]])".into(),
                ));
            }
            let emit_ms = interval_arg(&args[1], "emit interval")?;
            let retain_ms = if args.len() >= 3 {
                interval_arg(&args[2], "retain interval")?
            } else {
                emit_ms
            };
            let align_ms = if args.len() == 4 {
                interval_arg(&args[3], "alignment")?
            } else {
                0
            };
            if emit_ms <= 0 || retain_ms <= 0 {
                return Err(PlanError::Semantic("HOP intervals must be positive".into()));
            }
            Ok(GroupWindow::Hop {
                ts_index,
                emit_ms,
                retain_ms,
                align_ms,
            })
        }
    }

    /// Resolve a projection expression in aggregate context: group-key
    /// subexpressions become key refs, aggregate calls append to `aggs` and
    /// become agg output refs, anything else must compose those.
    #[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
    fn resolve_in_agg_context(
        &mut self,
        expr: &Expr,
        scope: &Scope,
        keys: &[ScalarExpr],
        key_count: usize,
        aggs: &mut Vec<AggCall>,
        window: &GroupWindow,
        input: &LogicalPlan,
    ) -> Result<ScalarExpr> {
        // Aggregate call?
        if let Some(call) = self.try_aggregate_call(expr, scope, window, aggs.len())? {
            // Deduplicate identical calls.
            let idx = aggs
                .iter()
                .position(|a| {
                    a.func == call.func && a.arg == call.arg && a.distinct == call.distinct
                })
                .unwrap_or_else(|| {
                    aggs.push(call.clone());
                    aggs.len() - 1
                });
            return Ok(ScalarExpr::input(key_count + idx, aggs[idx].result_type()));
        }
        // Group key (structurally equal after resolution)?
        if let Ok(resolved) = self.resolve(expr, scope) {
            if let Some(i) = keys.iter().position(|k| *k == resolved) {
                return Ok(ScalarExpr::input(i, keys[i].ty()));
            }
            if resolved.is_constant() {
                return Ok(resolved);
            }
        }
        // Compose recursively over operators.
        match expr {
            Expr::Binary { left, op, right } => {
                let l =
                    self.resolve_in_agg_context(left, scope, keys, key_count, aggs, window, input)?;
                let r = self
                    .resolve_in_agg_context(right, scope, keys, key_count, aggs, window, input)?;
                self.typed_binary(*op, l, r)
            }
            Expr::Nested(inner) => {
                self.resolve_in_agg_context(inner, scope, keys, key_count, aggs, window, input)
            }
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => {
                let e =
                    self.resolve_in_agg_context(expr, scope, keys, key_count, aggs, window, input)?;
                Ok(ScalarExpr::Neg(Box::new(e)))
            }
            other => Err(PlanError::Semantic(format!(
                "projection {other:?} is neither a GROUP BY key nor an aggregate"
            ))),
        }
    }

    /// Recognize an aggregate call and resolve its argument.
    fn try_aggregate_call(
        &mut self,
        expr: &Expr,
        scope: &Scope,
        window: &GroupWindow,
        ordinal: usize,
    ) -> Result<Option<AggCall>> {
        let (func, args, distinct) = match expr {
            Expr::CountStar => (AggFunc::CountStar, &[][..], false),
            Expr::Function {
                name,
                args,
                distinct,
            } => match AggFunc::from_name(name) {
                Some(f) => (f, args.as_slice(), *distinct),
                // Names that are neither built-in aggregates nor scalar
                // functions resolve as user-defined aggregates at runtime
                // (the UDAF API the paper lists as future work).
                None if ScalarFunc::from_name(name).is_none() => (
                    AggFunc::UserDefined(name.to_uppercase()),
                    args.as_slice(),
                    *distinct,
                ),
                None => return Ok(None),
            },
            _ => return Ok(None),
        };
        if matches!(func, AggFunc::Start | AggFunc::End) && *window == GroupWindow::None {
            return Err(PlanError::Semantic(
                "START/END are only valid with a TUMBLE/HOP window".into(),
            ));
        }
        let arg = match (func.clone(), args) {
            (AggFunc::CountStar, _) => None,
            (_, [a]) => Some(self.resolve(a, scope)?),
            (f, _) => {
                return Err(PlanError::Semantic(format!(
                    "{} takes exactly one argument",
                    f.name()
                )))
            }
        };
        if let (AggFunc::Sum | AggFunc::Avg | AggFunc::Min | AggFunc::Max, Some(a)) = (&func, &arg)
        {
            if !is_numeric(&a.ty()) && !matches!(a.ty(), Schema::String) {
                return Err(PlanError::Type(format!(
                    "{} argument must be numeric, got {}",
                    func.name(),
                    a.ty().type_name()
                )));
            }
        }
        Ok(Some(AggCall {
            output_name: format!("{}_{ordinal}", func.name().replace("(*)", "_star")),
            func,
            arg,
            distinct,
        }))
    }

    /// Resolve HAVING: names in the aggregate output first, then structural
    /// aggregate matches (e.g. `COUNT(*) > 2` after `SELECT COUNT(*)`).
    fn resolve_having(
        &mut self,
        expr: &Expr,
        agg_scope: &Scope,
        _key_sources: &[Expr],
        input_scope: &Scope,
        agg_plan: &LogicalPlan,
    ) -> Result<ScalarExpr> {
        // Try plain resolution against the aggregate's output columns.
        if let Ok(r) = self.resolve(expr, agg_scope) {
            return Ok(r);
        }
        // Structural: match aggregate calls against plan aggs.
        let LogicalPlan::Aggregate { keys, aggs, .. } = agg_plan else {
            return Err(PlanError::Semantic("HAVING without aggregate".into()));
        };
        match expr {
            Expr::Binary { left, op, right } => {
                let l =
                    self.resolve_having(left, agg_scope, _key_sources, input_scope, agg_plan)?;
                let r =
                    self.resolve_having(right, agg_scope, _key_sources, input_scope, agg_plan)?;
                self.typed_binary(*op, l, r)
            }
            Expr::Nested(inner) => {
                self.resolve_having(inner, agg_scope, _key_sources, input_scope, agg_plan)
            }
            Expr::CountStar | Expr::Function { .. } => {
                let window = GroupWindow::None;
                if let Some(call) = self.try_aggregate_call(expr, input_scope, &window, 0)? {
                    if let Some(i) = aggs
                        .iter()
                        .position(|a| a.func == call.func && a.arg == call.arg)
                    {
                        return Ok(ScalarExpr::input(keys.len() + i, aggs[i].result_type()));
                    }
                }
                Err(PlanError::Semantic(format!(
                    "HAVING references an aggregate not in the SELECT list: {expr:?}"
                )))
            }
            other => Err(PlanError::Semantic(format!(
                "cannot resolve HAVING term {other:?}"
            ))),
        }
    }

    // ------------------------------------------------ sliding (OVER) windows

    fn sliding_window_query(
        &mut self,
        query: &Query,
        input: LogicalPlan,
        scope: Scope,
    ) -> Result<LogicalPlan> {
        // Gather distinct window specs in order of appearance.
        let mut specs: Vec<WindowSpec> = Vec::new();
        for item in &query.projections {
            if let SelectItem::Expr { expr, .. } = item {
                expr.visit(&mut |e| {
                    if let Expr::Over { window, .. } = e {
                        if !specs.contains(window) {
                            specs.push(window.clone());
                        }
                    }
                });
            }
        }

        // Chain one SlidingWindow node per distinct spec; each appends its
        // agg columns. Record, per (spec, func-expr) pair, the output index.
        let mut plan = input;
        let input_arity = scope.columns.len();
        let mut over_outputs: Vec<(WindowSpec, Expr, usize)> = Vec::new();
        let mut appended = 0usize;
        for spec in &specs {
            let partition_by: Vec<ScalarExpr> = spec
                .partition_by
                .iter()
                .map(|e| self.resolve(e, &scope))
                .collect::<Result<_>>()?;
            // ORDER BY must be the timestamp column (monotonic, §3.8.1).
            if spec.order_by.len() != 1 {
                return Err(PlanError::Unsupported(
                    "OVER windows require exactly one ORDER BY column".into(),
                ));
            }
            let ts_index = match self.resolve(&spec.order_by[0].0, &scope)? {
                ScalarExpr::InputRef { index, ty } => {
                    if ty != Schema::Timestamp {
                        self.warnings
                            .push("OVER window ordered by a non-timestamp column".to_string());
                    }
                    index
                }
                _ => {
                    return Err(PlanError::Unsupported(
                        "OVER ORDER BY must be a plain column".into(),
                    ))
                }
            };
            let (range_ms, rows) = match (&spec.units, &spec.start) {
                (FrameUnits::Range, FrameBound::Preceding(e)) => match &**e {
                    Expr::Literal(Literal::Interval { millis, .. }) => (Some(*millis), None),
                    other => {
                        return Err(PlanError::Semantic(format!(
                            "RANGE frame requires an INTERVAL literal, got {other:?}"
                        )))
                    }
                },
                (FrameUnits::Rows, FrameBound::Preceding(e)) => match &**e {
                    Expr::Literal(Literal::Int(n)) if *n >= 0 => (None, Some(*n as u64)),
                    other => {
                        return Err(PlanError::Semantic(format!(
                            "ROWS frame requires a non-negative integer, got {other:?}"
                        )))
                    }
                },
                (_, FrameBound::UnboundedPreceding) => (None, None),
                (_, FrameBound::CurrentRow) => (Some(0), None),
            };

            // Collect agg calls for this spec from all projections.
            let mut aggs: Vec<AggCall> = Vec::new();
            for item in &query.projections {
                if let SelectItem::Expr { expr, .. } = item {
                    collect_over_calls(expr, spec, &mut |func_expr| {
                        if over_outputs
                            .iter()
                            .any(|(s, e, _)| s == spec && e == func_expr)
                        {
                            return Ok(());
                        }
                        let call = self
                            .try_aggregate_call(
                                func_expr,
                                &scope,
                                &GroupWindow::Tumble {
                                    ts_index: 0,
                                    size_ms: 1,
                                },
                                aggs.len(),
                            )?
                            .ok_or_else(|| {
                                PlanError::Semantic(format!(
                                    "OVER applies to aggregate functions, got {func_expr:?}"
                                ))
                            })?;
                        over_outputs.push((
                            spec.clone(),
                            func_expr.clone(),
                            input_arity + appended + aggs.len(),
                        ));
                        aggs.push(call);
                        Ok(())
                    })?;
                }
            }
            appended += aggs.len();
            plan = LogicalPlan::SlidingWindow {
                input: Box::new(plan),
                partition_by,
                ts_index,
                range_ms,
                rows,
                aggs,
            };
        }

        // Final projection over input columns + appended agg columns.
        let full_names = plan.output_names();
        let full_types = plan.output_types();
        let full_scope = Scope {
            columns: scope
                .columns
                .iter()
                .cloned()
                .chain(
                    full_names[input_arity..]
                        .iter()
                        .zip(&full_types[input_arity..])
                        .map(|(n, t)| ScopeColumn {
                            qualifier: None,
                            name: n.clone(),
                            ty: t.clone(),
                        }),
                )
                .collect(),
        };
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for item in &query.projections {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in scope.columns.iter().enumerate() {
                        exprs.push(ScalarExpr::input(i, c.ty.clone()));
                        names.push(c.name.clone());
                    }
                }
                SelectItem::QualifiedWildcard(rel) => {
                    for (i, c) in scope.columns.iter().enumerate() {
                        if c.qualifier
                            .as_deref()
                            .is_some_and(|q| q.eq_ignore_ascii_case(rel))
                        {
                            exprs.push(ScalarExpr::input(i, c.ty.clone()));
                            names.push(c.name.clone());
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let resolved =
                        self.resolve_with_over(expr, &full_scope, &over_outputs, &full_types)?;
                    names.push(
                        alias
                            .clone()
                            .unwrap_or_else(|| derive_name(expr, exprs.len())),
                    );
                    exprs.push(resolved);
                }
            }
        }
        Ok(LogicalPlan::Project {
            input: Box::new(plan),
            exprs,
            names,
        })
    }

    /// Resolve an expression where OVER subtrees map to appended columns.
    fn resolve_with_over(
        &mut self,
        expr: &Expr,
        scope: &Scope,
        over_outputs: &[(WindowSpec, Expr, usize)],
        types: &[Schema],
    ) -> Result<ScalarExpr> {
        if let Expr::Over { func, window } = expr {
            let idx = over_outputs
                .iter()
                .find(|(s, e, _)| s == window && e == &**func)
                .map(|(_, _, i)| *i)
                .ok_or_else(|| PlanError::Semantic("unresolved OVER expression".into()))?;
            return Ok(ScalarExpr::input(idx, types[idx].clone()));
        }
        match expr {
            Expr::Binary { left, op, right } => {
                let l = self.resolve_with_over(left, scope, over_outputs, types)?;
                let r = self.resolve_with_over(right, scope, over_outputs, types)?;
                self.typed_binary(*op, l, r)
            }
            Expr::Nested(inner) => self.resolve_with_over(inner, scope, over_outputs, types),
            other => self.resolve(other, scope),
        }
    }

    // -------------------------------------------------- expression resolver

    fn resolve(&mut self, expr: &Expr, scope: &Scope) -> Result<ScalarExpr> {
        match expr {
            Expr::Column { qualifier, name } => {
                let (index, ty) = scope.resolve(qualifier.as_deref(), name)?;
                Ok(ScalarExpr::InputRef { index, ty })
            }
            Expr::Literal(l) => Ok(ScalarExpr::Literal(literal_value(l))),
            Expr::Unary { op, expr } => {
                let inner = self.resolve(expr, scope)?;
                match op {
                    UnaryOp::Not => {
                        if inner.ty() != Schema::Boolean {
                            return Err(PlanError::Type("NOT requires a boolean".into()));
                        }
                        Ok(ScalarExpr::Not(Box::new(inner)))
                    }
                    UnaryOp::Neg => {
                        if !is_numeric(&inner.ty()) {
                            return Err(PlanError::Type("negation requires a numeric".into()));
                        }
                        Ok(ScalarExpr::Neg(Box::new(inner)))
                    }
                }
            }
            Expr::Binary { left, op, right } => {
                let l = self.resolve(left, scope)?;
                let r = self.resolve(right, scope)?;
                self.typed_binary(*op, l, r)
            }
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                // Desugar: e BETWEEN a AND b ⇒ e >= a AND e <= b.
                let e = self.resolve(expr, scope)?;
                let lo = self.resolve(low, scope)?;
                let hi = self.resolve(high, scope)?;
                let ge = self.typed_binop(BinOp::GtEq, e.clone(), lo)?;
                let le = self.typed_binop(BinOp::LtEq, e, hi)?;
                let both = ScalarExpr::Binary {
                    op: BinOp::And,
                    left: Box::new(ge),
                    right: Box::new(le),
                    ty: Schema::Boolean,
                };
                Ok(if *negated {
                    ScalarExpr::Not(Box::new(both))
                } else {
                    both
                })
            }
            Expr::IsNull { expr, negated } => {
                let inner = self.resolve(expr, scope)?;
                Ok(ScalarExpr::IsNull {
                    expr: Box::new(inner),
                    negated: *negated,
                })
            }
            Expr::FloorTo { expr, unit } => {
                let inner = self.resolve(expr, scope)?;
                if !matches!(inner.ty(), Schema::Timestamp | Schema::Long) {
                    return Err(PlanError::Type(format!(
                        "FLOOR(… TO {}) requires a timestamp",
                        unit.name()
                    )));
                }
                Ok(ScalarExpr::FloorTime {
                    expr: Box::new(inner),
                    unit_millis: unit.millis(),
                })
            }
            Expr::Function { name, args, .. } => {
                if AggFunc::from_name(name).is_some() {
                    return Err(PlanError::Semantic(format!(
                        "aggregate {name} is not valid here (needs GROUP BY or OVER)"
                    )));
                }
                let func = ScalarFunc::from_name(name)
                    .ok_or_else(|| PlanError::Unsupported(format!("unknown function {name}")))?;
                let args: Vec<ScalarExpr> = args
                    .iter()
                    .map(|a| self.resolve(a, scope))
                    .collect::<Result<_>>()?;
                let ty = scalar_func_type(func, &args)?;
                Ok(ScalarExpr::Call { func, args, ty })
            }
            Expr::CountStar => Err(PlanError::Semantic(
                "COUNT(*) is not valid here (needs GROUP BY or OVER)".into(),
            )),
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                let mut resolved_branches = Vec::new();
                for (w, t) in branches {
                    let cond = match operand {
                        Some(op) => {
                            let lhs = self.resolve(op, scope)?;
                            let rhs = self.resolve(w, scope)?;
                            self.typed_binop(BinOp::Eq, lhs, rhs)?
                        }
                        None => {
                            let c = self.resolve(w, scope)?;
                            if c.ty() != Schema::Boolean {
                                return Err(PlanError::Type(
                                    "CASE WHEN condition must be boolean".into(),
                                ));
                            }
                            c
                        }
                    };
                    resolved_branches.push((cond, self.resolve(t, scope)?));
                }
                let else_resolved = match else_result {
                    Some(e) => Some(Box::new(self.resolve(e, scope)?)),
                    None => None,
                };
                let ty = resolved_branches
                    .first()
                    .map(|(_, t)| t.ty())
                    .unwrap_or(Schema::Null);
                Ok(ScalarExpr::Case {
                    branches: resolved_branches,
                    else_result: else_resolved,
                    ty,
                })
            }
            Expr::Cast { expr, type_name } => {
                let inner = self.resolve(expr, scope)?;
                let ty = parse_type_name(type_name)?;
                Ok(ScalarExpr::Cast {
                    expr: Box::new(inner),
                    ty,
                })
            }
            Expr::Over { .. } => Err(PlanError::Semantic(
                "OVER windows are only valid in the SELECT list".into(),
            )),
            Expr::Nested(inner) => self.resolve(inner, scope),
        }
    }

    fn typed_binary(&mut self, op: BinaryOp, l: ScalarExpr, r: ScalarExpr) -> Result<ScalarExpr> {
        self.typed_binop(convert_binop(op), l, r)
    }

    fn typed_binop(&mut self, op: BinOp, l: ScalarExpr, r: ScalarExpr) -> Result<ScalarExpr> {
        let ty = if op.is_logical() {
            if l.ty() != Schema::Boolean || r.ty() != Schema::Boolean {
                return Err(PlanError::Type(format!(
                    "{} requires boolean operands",
                    op.symbol()
                )));
            }
            Schema::Boolean
        } else if op.is_comparison() {
            let (lt, rt) = (l.ty(), r.ty());
            let comparable = lt == rt
                || (is_numeric(&lt) && is_numeric(&rt))
                || matches!((&lt, &rt), (Schema::Optional(a), b) if **a == *b)
                || matches!((&lt, &rt), (a, Schema::Optional(b)) if *a == **b);
            if !comparable {
                return Err(PlanError::Type(format!(
                    "cannot compare {} with {}",
                    lt.type_name(),
                    rt.type_name()
                )));
            }
            Schema::Boolean
        } else if op == BinOp::Like {
            if l.ty() != Schema::String || r.ty() != Schema::String {
                return Err(PlanError::Type("LIKE requires string operands".into()));
            }
            Schema::Boolean
        } else {
            arithmetic_type(op, &l.ty(), &r.ty())?
        };
        Ok(ScalarExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
            ty,
        })
    }
}

// ----------------------------------------------------------------- helpers

fn convert_binop(op: BinaryOp) -> BinOp {
    match op {
        BinaryOp::Or => BinOp::Or,
        BinaryOp::And => BinOp::And,
        BinaryOp::Eq => BinOp::Eq,
        BinaryOp::NotEq => BinOp::NotEq,
        BinaryOp::Lt => BinOp::Lt,
        BinaryOp::LtEq => BinOp::LtEq,
        BinaryOp::Gt => BinOp::Gt,
        BinaryOp::GtEq => BinOp::GtEq,
        BinaryOp::Plus => BinOp::Plus,
        BinaryOp::Minus => BinOp::Minus,
        BinaryOp::Multiply => BinOp::Multiply,
        BinaryOp::Divide => BinOp::Divide,
        BinaryOp::Modulo => BinOp::Modulo,
        BinaryOp::Like => BinOp::Like,
    }
}

fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Int(n) => {
            if let Ok(i) = i32::try_from(*n) {
                Value::Int(i)
            } else {
                Value::Long(*n)
            }
        }
        Literal::Decimal(d) => Value::Double(*d),
        Literal::String(s) => Value::String(s.clone()),
        Literal::Bool(b) => Value::Boolean(*b),
        Literal::Null => Value::Null,
        Literal::Interval { millis, .. } | Literal::Time { millis, .. } => Value::Long(*millis),
    }
}

fn parse_type_name(name: &str) -> Result<Schema> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "int" | "integer" => Schema::Int,
        "bigint" | "long" => Schema::Long,
        "float" | "real" => Schema::Float,
        "double" => Schema::Double,
        "varchar" | "string" | "char" => Schema::String,
        "boolean" | "bool" => Schema::Boolean,
        "timestamp" => Schema::Timestamp,
        other => return Err(PlanError::Unsupported(format!("CAST to {other}"))),
    })
}

fn scalar_func_type(func: ScalarFunc, args: &[ScalarExpr]) -> Result<Schema> {
    match func {
        ScalarFunc::Greatest | ScalarFunc::Least => {
            if args.is_empty() {
                return Err(PlanError::Semantic(format!(
                    "{} needs arguments",
                    func.name()
                )));
            }
            Ok(args[0].ty())
        }
        ScalarFunc::Abs | ScalarFunc::Floor | ScalarFunc::Ceil => {
            let ty = args.first().map(|a| a.ty()).ok_or_else(|| {
                PlanError::Semantic(format!("{} needs one argument", func.name()))
            })?;
            if !is_numeric(&ty) {
                return Err(PlanError::Type(format!(
                    "{} requires a numeric",
                    func.name()
                )));
            }
            Ok(ty)
        }
        ScalarFunc::Upper | ScalarFunc::Lower | ScalarFunc::Concat => Ok(Schema::String),
        ScalarFunc::CharLength => Ok(Schema::Int),
    }
}

fn derive_name(expr: &Expr, ordinal: usize) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::FloorTo { expr, .. } => derive_name(expr, ordinal),
        Expr::Function { name, .. } => format!("{}_{ordinal}", name.to_lowercase()),
        Expr::CountStar => format!("count_{ordinal}"),
        _ => format!("EXPR${ordinal}"),
    }
}

fn contains_aggregate(expr: &Expr) -> bool {
    let mut found = false;
    expr.visit(&mut |e| match e {
        Expr::CountStar => found = true,
        Expr::Function { name, .. }
            if AggFunc::from_name(name).is_some()
                && !name.eq_ignore_ascii_case("TUMBLE")
                && !name.eq_ignore_ascii_case("HOP") =>
        {
            found = true
        }
        _ => {}
    });
    // OVER expressions contain aggregates syntactically but are handled by
    // the sliding-window path; exclude them.
    if found && contains_over(expr) {
        let mut outside = false;
        check_agg_outside_over(expr, &mut outside);
        return outside;
    }
    found
}

fn check_agg_outside_over(expr: &Expr, found: &mut bool) {
    match expr {
        Expr::Over { .. } => {} // don't descend
        Expr::CountStar => *found = true,
        Expr::Function { name, args, .. } => {
            if AggFunc::from_name(name).is_some() {
                *found = true;
            }
            for a in args {
                check_agg_outside_over(a, found);
            }
        }
        Expr::Binary { left, right, .. } => {
            check_agg_outside_over(left, found);
            check_agg_outside_over(right, found);
        }
        Expr::Nested(e) | Expr::Unary { expr: e, .. } => check_agg_outside_over(e, found),
        _ => {}
    }
}

fn contains_over(expr: &Expr) -> bool {
    let mut found = false;
    expr.visit(&mut |e| {
        if matches!(e, Expr::Over { .. }) {
            found = true;
        }
    });
    found
}

/// Call `f` on every `Over` function expression using exactly `spec`.
fn collect_over_calls(
    expr: &Expr,
    spec: &WindowSpec,
    f: &mut dyn FnMut(&Expr) -> Result<()>,
) -> Result<()> {
    match expr {
        Expr::Over { func, window } if window == spec => f(func),
        Expr::Over { .. } => Ok(()),
        Expr::Binary { left, right, .. } => {
            collect_over_calls(left, spec, f)?;
            collect_over_calls(right, spec, f)
        }
        Expr::Nested(e) | Expr::Unary { expr: e, .. } => collect_over_calls(e, spec, f),
        _ => Ok(()),
    }
}

/// Split a resolved join condition into equi pairs, an optional time bound,
/// and a residual predicate (§3.8.1 window-in-condition form).
#[allow(clippy::type_complexity)]
fn decompose_join_condition(
    cond: &ScalarExpr,
    left_arity: usize,
    left: &LogicalPlan,
    right: &LogicalPlan,
) -> Result<(Vec<(usize, usize)>, Option<TimeBound>, Option<ScalarExpr>)> {
    let mut conjuncts = Vec::new();
    flatten_and(cond, &mut conjuncts);
    let mut equi = Vec::new();
    let mut residual: Vec<ScalarExpr> = Vec::new();
    let mut lower: Option<(usize, usize, i64)> = None; // (l_ts, r_ts, slack)
    let mut upper: Option<(usize, usize, i64)> = None;

    for c in conjuncts {
        // left.col = right.col ?
        if let ScalarExpr::Binary {
            op: BinOp::Eq,
            left: l,
            right: r,
            ..
        } = &c
        {
            if let (ScalarExpr::InputRef { index: a, .. }, ScalarExpr::InputRef { index: b, .. }) =
                (&**l, &**r)
            {
                if *a < left_arity && *b >= left_arity {
                    equi.push((*a, *b - left_arity));
                    continue;
                }
                if *b < left_arity && *a >= left_arity {
                    equi.push((*b, *a - left_arity));
                    continue;
                }
            }
        }
        // ts >= other_ts - INTERVAL / ts <= other_ts + INTERVAL (from the
        // desugared BETWEEN).
        if let Some((l_ts, r_ts, slack, is_lower)) = match_time_bound(&c, left_arity) {
            if is_lower {
                lower = Some((l_ts, r_ts, slack));
            } else {
                upper = Some((l_ts, r_ts, slack));
            }
            continue;
        }
        residual.push(c);
    }

    let time_bound = match (lower, upper) {
        (Some((l_ts, r_ts, lo)), Some((l2, r2, hi))) if l_ts == l2 && r_ts == r2 => {
            // Sanity: both referenced columns should be the timestamp columns.
            let _ = (left, right);
            Some(TimeBound {
                left_ts: l_ts,
                right_ts: r_ts,
                lower_ms: lo,
                upper_ms: hi,
            })
        }
        (None, None) => None,
        _ => {
            return Err(PlanError::Unsupported(
                "stream-to-stream join window must bound the timestamp from both sides \
                 (ts BETWEEN other - INTERVAL AND other + INTERVAL)"
                    .into(),
            ))
        }
    };
    let residual = residual.into_iter().reduce(|a, b| ScalarExpr::Binary {
        op: BinOp::And,
        left: Box::new(a),
        right: Box::new(b),
        ty: Schema::Boolean,
    });
    Ok((equi, time_bound, residual))
}

fn flatten_and(expr: &ScalarExpr, out: &mut Vec<ScalarExpr>) {
    if let ScalarExpr::Binary {
        op: BinOp::And,
        left,
        right,
        ..
    } = expr
    {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(expr.clone());
    }
}

/// Match `ts >= other ± k` / `ts <= other ± k` patterns; returns
/// (left-side ts index, right-side ts index, slack ms, is_lower_bound).
fn match_time_bound(expr: &ScalarExpr, left_arity: usize) -> Option<(usize, usize, i64, bool)> {
    let ScalarExpr::Binary {
        op, left, right, ..
    } = expr
    else {
        return None;
    };
    let (a, rhs, is_lower) = match op {
        BinOp::GtEq => (&**left, &**right, true),
        BinOp::LtEq => (&**left, &**right, false),
        _ => return None,
    };
    let ScalarExpr::InputRef {
        index: ts_a,
        ty: ty_a,
    } = a
    else {
        return None;
    };
    if *ty_a != Schema::Timestamp {
        return None;
    }
    // rhs: other_ts ± const
    let (other, slack) = match rhs {
        ScalarExpr::Binary {
            op: BinOp::Minus,
            left: l,
            right: r,
            ..
        } => match (&**l, &**r) {
            (ScalarExpr::InputRef { index, ty }, ScalarExpr::Literal(v))
                if *ty == Schema::Timestamp =>
            {
                (*index, v.as_i64()?)
            }
            _ => return None,
        },
        ScalarExpr::Binary {
            op: BinOp::Plus,
            left: l,
            right: r,
            ..
        } => match (&**l, &**r) {
            (ScalarExpr::InputRef { index, ty }, ScalarExpr::Literal(v))
                if *ty == Schema::Timestamp =>
            {
                (*index, v.as_i64()?)
            }
            _ => return None,
        },
        ScalarExpr::InputRef { index, ty } if *ty == Schema::Timestamp => (*index, 0),
        _ => return None,
    };
    // Normalize so the tuple is (left-side index, right-side index).
    if *ts_a < left_arity && other >= left_arity {
        Some((*ts_a, other - left_arity, slack, is_lower))
    } else if *ts_a >= left_arity && other < left_arity {
        // Mirrored orientation: other side's bound. Flip lower/upper.
        Some((other, *ts_a - left_arity, slack, !is_lower))
    } else {
        None
    }
}
