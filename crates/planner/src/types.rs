//! Resolved scalar expressions — the planner's `RexNode` analogue.
//!
//! The validator turns parser AST expressions (name-based) into
//! [`ScalarExpr`]s whose column references are **positional input refs**,
//! because SamzaSQL's operator layer evaluates expressions over tuples
//! "represented as an array in memory" (§5.1). Every node carries its result
//! type so downstream operators never re-infer.

use crate::error::{PlanError, Result};
use samzasql_serde::{Schema, Value};

/// Binary operators after desugaring (BETWEEN is expanded away).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Like,
}

impl BinOp {
    /// True for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// True for AND/OR.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// SQL spelling for plan display.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::Plus => "+",
            BinOp::Minus => "-",
            BinOp::Multiply => "*",
            BinOp::Divide => "/",
            BinOp::Modulo => "%",
            BinOp::Like => "LIKE",
        }
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// Maximum of its arguments (used for merged rowtimes in §3.8.1).
    Greatest,
    /// Minimum of its arguments.
    Least,
    Abs,
    Upper,
    Lower,
    /// String concatenation.
    Concat,
    CharLength,
    /// Numeric FLOOR/CEIL (the time-unit form is [`ScalarExpr::FloorTime`]).
    Floor,
    Ceil,
}

impl ScalarFunc {
    /// Resolve by SQL name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "GREATEST" => ScalarFunc::Greatest,
            "LEAST" => ScalarFunc::Least,
            "ABS" => ScalarFunc::Abs,
            "UPPER" => ScalarFunc::Upper,
            "LOWER" => ScalarFunc::Lower,
            "CONCAT" => ScalarFunc::Concat,
            "CHAR_LENGTH" | "CHARACTER_LENGTH" => ScalarFunc::CharLength,
            "FLOOR" => ScalarFunc::Floor,
            "CEIL" | "CEILING" => ScalarFunc::Ceil,
            _ => return None,
        })
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ScalarFunc::Greatest => "GREATEST",
            ScalarFunc::Least => "LEAST",
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Lower => "LOWER",
            ScalarFunc::Concat => "CONCAT",
            ScalarFunc::CharLength => "CHAR_LENGTH",
            ScalarFunc::Floor => "FLOOR",
            ScalarFunc::Ceil => "CEIL",
        }
    }
}

/// A resolved, typed scalar expression over positional inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Reference to input column `index` of type `ty`.
    InputRef {
        index: usize,
        ty: Schema,
    },
    /// A constant.
    Literal(Value),
    Binary {
        op: BinOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
        ty: Schema,
    },
    Not(Box<ScalarExpr>),
    Neg(Box<ScalarExpr>),
    IsNull {
        expr: Box<ScalarExpr>,
        negated: bool,
    },
    Call {
        func: ScalarFunc,
        args: Vec<ScalarExpr>,
        ty: Schema,
    },
    /// `FLOOR(ts TO unit)`: round a timestamp down to a unit boundary.
    FloorTime {
        expr: Box<ScalarExpr>,
        unit_millis: i64,
    },
    Case {
        branches: Vec<(ScalarExpr, ScalarExpr)>,
        else_result: Option<Box<ScalarExpr>>,
        ty: Schema,
    },
    Cast {
        expr: Box<ScalarExpr>,
        ty: Schema,
    },
}

impl ScalarExpr {
    /// The static result type.
    pub fn ty(&self) -> Schema {
        match self {
            ScalarExpr::InputRef { ty, .. } => ty.clone(),
            ScalarExpr::Literal(v) => v.infer_schema(),
            ScalarExpr::Binary { ty, .. } => ty.clone(),
            ScalarExpr::Not(_) | ScalarExpr::IsNull { .. } => Schema::Boolean,
            ScalarExpr::Neg(e) => e.ty(),
            ScalarExpr::Call { ty, .. } => ty.clone(),
            ScalarExpr::FloorTime { .. } => Schema::Timestamp,
            ScalarExpr::Case { ty, .. } => ty.clone(),
            ScalarExpr::Cast { ty, .. } => ty.clone(),
        }
    }

    /// Shorthand input-ref constructor.
    pub fn input(index: usize, ty: Schema) -> ScalarExpr {
        ScalarExpr::InputRef { index, ty }
    }

    /// True when the expression references no inputs (a constant).
    pub fn is_constant(&self) -> bool {
        let mut constant = true;
        self.visit(&mut |e| {
            if matches!(e, ScalarExpr::InputRef { .. }) {
                constant = false;
            }
        });
        constant
    }

    /// Pre-order traversal.
    pub fn visit<'a>(&'a self, f: &mut dyn FnMut(&'a ScalarExpr)) {
        f(self);
        match self {
            ScalarExpr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            ScalarExpr::Not(e) | ScalarExpr::Neg(e) => e.visit(f),
            ScalarExpr::IsNull { expr, .. }
            | ScalarExpr::FloorTime { expr, .. }
            | ScalarExpr::Cast { expr, .. } => expr.visit(f),
            ScalarExpr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            ScalarExpr::Case {
                branches,
                else_result,
                ..
            } => {
                for (w, t) in branches {
                    w.visit(f);
                    t.visit(f);
                }
                if let Some(e) = else_result {
                    e.visit(f);
                }
            }
            ScalarExpr::InputRef { .. } | ScalarExpr::Literal(_) => {}
        }
    }

    /// All referenced input indexes (sorted, deduped).
    pub fn input_refs(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let ScalarExpr::InputRef { index, .. } = e {
                out.push(*index);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Rewrite every input ref through `map` (used when pushing expressions
    /// across projections or shifting join sides).
    pub fn remap_inputs(&self, map: &dyn Fn(usize) -> usize) -> ScalarExpr {
        match self {
            ScalarExpr::InputRef { index, ty } => ScalarExpr::InputRef {
                index: map(*index),
                ty: ty.clone(),
            },
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Binary {
                op,
                left,
                right,
                ty,
            } => ScalarExpr::Binary {
                op: *op,
                left: Box::new(left.remap_inputs(map)),
                right: Box::new(right.remap_inputs(map)),
                ty: ty.clone(),
            },
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.remap_inputs(map))),
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Box::new(e.remap_inputs(map))),
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.remap_inputs(map)),
                negated: *negated,
            },
            ScalarExpr::Call { func, args, ty } => ScalarExpr::Call {
                func: *func,
                args: args.iter().map(|a| a.remap_inputs(map)).collect(),
                ty: ty.clone(),
            },
            ScalarExpr::FloorTime { expr, unit_millis } => ScalarExpr::FloorTime {
                expr: Box::new(expr.remap_inputs(map)),
                unit_millis: *unit_millis,
            },
            ScalarExpr::Case {
                branches,
                else_result,
                ty,
            } => ScalarExpr::Case {
                branches: branches
                    .iter()
                    .map(|(w, t)| (w.remap_inputs(map), t.remap_inputs(map)))
                    .collect(),
                else_result: else_result.as_ref().map(|e| Box::new(e.remap_inputs(map))),
                ty: ty.clone(),
            },
            ScalarExpr::Cast { expr, ty } => ScalarExpr::Cast {
                expr: Box::new(expr.remap_inputs(map)),
                ty: ty.clone(),
            },
        }
    }

    /// Substitute each input ref with the given expressions (inlining across
    /// a projection: ref *i* becomes `exprs[i]`).
    pub fn substitute(&self, exprs: &[ScalarExpr]) -> ScalarExpr {
        match self {
            ScalarExpr::InputRef { index, .. } => exprs[*index].clone(),
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Binary {
                op,
                left,
                right,
                ty,
            } => ScalarExpr::Binary {
                op: *op,
                left: Box::new(left.substitute(exprs)),
                right: Box::new(right.substitute(exprs)),
                ty: ty.clone(),
            },
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.substitute(exprs))),
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Box::new(e.substitute(exprs))),
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.substitute(exprs)),
                negated: *negated,
            },
            ScalarExpr::Call { func, args, ty } => ScalarExpr::Call {
                func: *func,
                args: args.iter().map(|a| a.substitute(exprs)).collect(),
                ty: ty.clone(),
            },
            ScalarExpr::FloorTime { expr, unit_millis } => ScalarExpr::FloorTime {
                expr: Box::new(expr.substitute(exprs)),
                unit_millis: *unit_millis,
            },
            ScalarExpr::Case {
                branches,
                else_result,
                ty,
            } => ScalarExpr::Case {
                branches: branches
                    .iter()
                    .map(|(w, t)| (w.substitute(exprs), t.substitute(exprs)))
                    .collect(),
                else_result: else_result.as_ref().map(|e| Box::new(e.substitute(exprs))),
                ty: ty.clone(),
            },
            ScalarExpr::Cast { expr, ty } => ScalarExpr::Cast {
                expr: Box::new(expr.substitute(exprs)),
                ty: ty.clone(),
            },
        }
    }

    /// Render for plan display.
    pub fn display(&self, names: &[String]) -> String {
        match self {
            ScalarExpr::InputRef { index, .. } => names
                .get(*index)
                .cloned()
                .unwrap_or_else(|| format!("$[{index}]")),
            ScalarExpr::Literal(v) => format!("{v}"),
            ScalarExpr::Binary {
                op, left, right, ..
            } => {
                format!(
                    "{} {} {}",
                    left.display(names),
                    op.symbol(),
                    right.display(names)
                )
            }
            ScalarExpr::Not(e) => format!("NOT {}", e.display(names)),
            ScalarExpr::Neg(e) => format!("-{}", e.display(names)),
            ScalarExpr::IsNull { expr, negated } => format!(
                "{} IS {}NULL",
                expr.display(names),
                if *negated { "NOT " } else { "" }
            ),
            ScalarExpr::Call { func, args, .. } => {
                let args: Vec<String> = args.iter().map(|a| a.display(names)).collect();
                format!("{}({})", func.name(), args.join(", "))
            }
            ScalarExpr::FloorTime { expr, unit_millis } => {
                format!("FLOOR_TIME({}, {unit_millis}ms)", expr.display(names))
            }
            ScalarExpr::Case {
                branches,
                else_result,
                ..
            } => {
                let mut s = String::from("CASE");
                for (w, t) in branches {
                    s.push_str(&format!(
                        " WHEN {} THEN {}",
                        w.display(names),
                        t.display(names)
                    ));
                }
                if let Some(e) = else_result {
                    s.push_str(&format!(" ELSE {}", e.display(names)));
                }
                s.push_str(" END");
                s
            }
            ScalarExpr::Cast { expr, ty } => {
                format!("CAST({} AS {})", expr.display(names), ty.type_name())
            }
        }
    }
}

/// True for types usable in arithmetic.
pub fn is_numeric(s: &Schema) -> bool {
    matches!(
        s,
        Schema::Int | Schema::Long | Schema::Float | Schema::Double | Schema::Timestamp
    )
}

/// The widened result type of an arithmetic op over two numerics, honouring
/// timestamp ± interval-as-long semantics.
pub fn arithmetic_type(op: BinOp, left: &Schema, right: &Schema) -> Result<Schema> {
    use Schema::*;
    if !is_numeric(left) || !is_numeric(right) {
        return Err(PlanError::Type(format!(
            "operator {} requires numeric operands, got {} and {}",
            op.symbol(),
            left.type_name(),
            right.type_name()
        )));
    }
    Ok(match (left, right) {
        // timestamp ± duration stays a timestamp; ts - ts is a duration.
        (Timestamp, Timestamp) if op == BinOp::Minus => Long,
        (Timestamp, _) | (_, Timestamp) => Timestamp,
        (Double, _) | (_, Double) | (Float, _) | (_, Float) => Double,
        (Long, _) | (_, Long) => Long,
        _ => Int,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iref(i: usize) -> ScalarExpr {
        ScalarExpr::input(i, Schema::Int)
    }

    #[test]
    fn constant_detection() {
        assert!(ScalarExpr::Literal(Value::Int(1)).is_constant());
        let e = ScalarExpr::Binary {
            op: BinOp::Plus,
            left: Box::new(ScalarExpr::Literal(Value::Int(1))),
            right: Box::new(iref(0)),
            ty: Schema::Int,
        };
        assert!(!e.is_constant());
    }

    #[test]
    fn input_refs_collected_sorted() {
        let e = ScalarExpr::Call {
            func: ScalarFunc::Greatest,
            args: vec![iref(3), iref(1), iref(3)],
            ty: Schema::Int,
        };
        assert_eq!(e.input_refs(), vec![1, 3]);
    }

    #[test]
    fn remap_shifts_refs() {
        let e = ScalarExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(iref(0)),
            right: Box::new(iref(2)),
            ty: Schema::Boolean,
        };
        let shifted = e.remap_inputs(&|i| i + 10);
        assert_eq!(shifted.input_refs(), vec![10, 12]);
    }

    #[test]
    fn substitute_inlines_projection() {
        // ref(0) > 5 where projection[0] = a + b (refs 1,2)
        let pred = ScalarExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(iref(0)),
            right: Box::new(ScalarExpr::Literal(Value::Int(5))),
            ty: Schema::Boolean,
        };
        let proj = vec![ScalarExpr::Binary {
            op: BinOp::Plus,
            left: Box::new(iref(1)),
            right: Box::new(iref(2)),
            ty: Schema::Int,
        }];
        let inlined = pred.substitute(&proj);
        assert_eq!(inlined.input_refs(), vec![1, 2]);
    }

    #[test]
    fn arithmetic_widening() {
        assert_eq!(
            arithmetic_type(BinOp::Plus, &Schema::Int, &Schema::Int).unwrap(),
            Schema::Int
        );
        assert_eq!(
            arithmetic_type(BinOp::Plus, &Schema::Int, &Schema::Long).unwrap(),
            Schema::Long
        );
        assert_eq!(
            arithmetic_type(BinOp::Plus, &Schema::Long, &Schema::Double).unwrap(),
            Schema::Double
        );
        assert_eq!(
            arithmetic_type(BinOp::Minus, &Schema::Timestamp, &Schema::Timestamp).unwrap(),
            Schema::Long,
            "rowtime - rowtime is a duration (Listing 7's timeToTravel)"
        );
        assert_eq!(
            arithmetic_type(BinOp::Minus, &Schema::Timestamp, &Schema::Long).unwrap(),
            Schema::Timestamp
        );
        assert!(arithmetic_type(BinOp::Plus, &Schema::String, &Schema::Int).is_err());
    }

    #[test]
    fn display_uses_names() {
        let e = ScalarExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(iref(1)),
            right: Box::new(ScalarExpr::Literal(Value::Int(50))),
            ty: Schema::Boolean,
        };
        assert_eq!(e.display(&["rowtime".into(), "units".into()]), "units > 50");
    }
}
