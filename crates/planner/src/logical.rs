//! Logical relational algebra.
//!
//! "The physical plan is a tree of relational algebra operators such as scan,
//! filter, project and join where scan operators are at the leaf nodes"
//! (§4.2) — this module is the logical counterpart the optimizer rewrites
//! before physical conversion.

use crate::catalog::ObjectKind;
use crate::types::ScalarExpr;
use samzasql_parser::ast::JoinKind;
use samzasql_serde::Schema;

/// Aggregate functions, including the paper's window-bound aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggFunc {
    CountStar,
    Count,
    Sum,
    Min,
    Max,
    Avg,
    /// `START(ts)` — window start bound (§3.6).
    Start,
    /// `END(ts)` — window end bound (§3.6).
    End,
    /// A user-defined aggregate resolved at runtime by name (the concrete
    /// API the paper lists as future work; see `samzasql-core::udaf`).
    UserDefined(String),
}

impl AggFunc {
    /// Resolve a built-in by SQL name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "AVG" => AggFunc::Avg,
            "START" => AggFunc::Start,
            "END" => AggFunc::End,
            _ => return None,
        })
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            AggFunc::CountStar => "COUNT(*)".into(),
            AggFunc::Count => "COUNT".into(),
            AggFunc::Sum => "SUM".into(),
            AggFunc::Min => "MIN".into(),
            AggFunc::Max => "MAX".into(),
            AggFunc::Avg => "AVG".into(),
            AggFunc::Start => "START".into(),
            AggFunc::End => "END".into(),
            AggFunc::UserDefined(n) => n.clone(),
        }
    }

    /// Result type given the argument type.
    pub fn result_type(&self, arg: Option<&Schema>) -> Schema {
        match self {
            AggFunc::CountStar | AggFunc::Count => Schema::Long,
            AggFunc::Sum => match arg {
                Some(Schema::Double) | Some(Schema::Float) => Schema::Double,
                Some(Schema::Long) => Schema::Long,
                _ => Schema::Long,
            },
            // MIN/MAX/AVG are NULL over an empty set, and a UDAF may return
            // NULL — their columns are nullable. UDAFs return DOUBLE (typed
            // UDAF registration is a possible extension).
            AggFunc::Min | AggFunc::Max => arg.cloned().unwrap_or(Schema::Long).optional(),
            AggFunc::Avg => Schema::Double.optional(),
            AggFunc::Start | AggFunc::End => Schema::Timestamp,
            AggFunc::UserDefined(_) => Schema::Double.optional(),
        }
    }
}

/// One aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    /// Argument expression over the aggregate's input; `None` for COUNT(*).
    pub arg: Option<ScalarExpr>,
    pub distinct: bool,
    /// Output column name.
    pub output_name: String,
}

impl AggCall {
    /// Result type of this call.
    pub fn result_type(&self) -> Schema {
        self.func
            .result_type(self.arg.as_ref().map(|a| a.ty()).as_ref())
    }
}

/// Group-by window variants for streaming aggregates (§3.6).
#[derive(Debug, Clone, PartialEq)]
pub enum GroupWindow {
    /// Plain relational GROUP BY (bounded input, or FLOOR(ts TO unit) keys).
    None,
    /// `TUMBLE(ts, size)`.
    Tumble { ts_index: usize, size_ms: i64 },
    /// `HOP(ts, emit, retain, align)` — `retain` need not be a multiple of
    /// `emit` (§3.6).
    Hop {
        ts_index: usize,
        emit_ms: i64,
        retain_ms: i64,
        align_ms: i64,
    },
}

/// Sliding-window time bound extracted from a stream-to-stream join
/// condition (§3.8.1): `left_ts BETWEEN right_ts - lower AND right_ts +
/// upper`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeBound {
    /// Index of the timestamp column in the LEFT input's own output space.
    pub left_ts: usize,
    /// Index of the timestamp column in the RIGHT input's own output space.
    pub right_ts: usize,
    /// Lower slack in milliseconds.
    pub lower_ms: i64,
    /// Upper slack in milliseconds.
    pub upper_ms: i64,
}

/// The logical plan tree. Every node knows its output column names and
/// types; input refs in expressions index that output space of the child.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    Scan {
        object: String,
        kind: ObjectKind,
        topic: String,
        names: Vec<String>,
        types: Vec<Schema>,
        /// Continuous (STREAM keyword) vs bounded historical scan (§3.3).
        stream: bool,
        /// Index of the event-time column, when present.
        ts_index: Option<usize>,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: ScalarExpr,
    },
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<ScalarExpr>,
        names: Vec<String>,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        window: GroupWindow,
        keys: Vec<ScalarExpr>,
        key_names: Vec<String>,
        aggs: Vec<AggCall>,
    },
    /// Analytic (OVER) sliding window: appends one column per agg call to the
    /// input row (one row out per row in, §3.7).
    SlidingWindow {
        input: Box<LogicalPlan>,
        partition_by: Vec<ScalarExpr>,
        /// Index of the ORDER BY timestamp column in the input.
        ts_index: usize,
        /// RANGE frame in milliseconds (time domain) or ROWS count (tuple
        /// domain); `None` bound means unbounded preceding.
        range_ms: Option<i64>,
        rows: Option<u64>,
        aggs: Vec<AggCall>,
    },
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        kind: JoinKind,
        /// Equi-join key pairs as (left output index, right output index).
        equi: Vec<(usize, usize)>,
        /// Stream-to-stream window bound.
        time_bound: Option<TimeBound>,
        /// Residual non-equi predicate over the joined row.
        residual: Option<ScalarExpr>,
    },
}

impl LogicalPlan {
    /// Output column names.
    pub fn output_names(&self) -> Vec<String> {
        match self {
            LogicalPlan::Scan { names, .. } => names.clone(),
            LogicalPlan::Filter { input, .. } => input.output_names(),
            LogicalPlan::Project { names, .. } => names.clone(),
            LogicalPlan::Aggregate {
                key_names, aggs, ..
            } => {
                let mut out = key_names.clone();
                out.extend(aggs.iter().map(|a| a.output_name.clone()));
                out
            }
            LogicalPlan::SlidingWindow { input, aggs, .. } => {
                let mut out = input.output_names();
                out.extend(aggs.iter().map(|a| a.output_name.clone()));
                out
            }
            LogicalPlan::Join { left, right, .. } => {
                let mut out = left.output_names();
                out.extend(right.output_names());
                out
            }
        }
    }

    /// Output column types.
    pub fn output_types(&self) -> Vec<Schema> {
        match self {
            LogicalPlan::Scan { types, .. } => types.clone(),
            LogicalPlan::Filter { input, .. } => input.output_types(),
            LogicalPlan::Project { exprs, .. } => exprs.iter().map(|e| e.ty()).collect(),
            LogicalPlan::Aggregate { keys, aggs, .. } => {
                let mut out: Vec<Schema> = keys.iter().map(|k| k.ty()).collect();
                out.extend(aggs.iter().map(|a| a.result_type()));
                out
            }
            LogicalPlan::SlidingWindow { input, aggs, .. } => {
                let mut out = input.output_types();
                out.extend(aggs.iter().map(|a| a.result_type()));
                out
            }
            LogicalPlan::Join { left, right, .. } => {
                let mut out = left.output_types();
                out.extend(right.output_types());
                out
            }
        }
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.output_names().len()
    }

    /// Whether this plan produces a continuous stream.
    pub fn is_stream(&self) -> bool {
        match self {
            LogicalPlan::Scan { stream, .. } => *stream,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::SlidingWindow { input, .. } => input.is_stream(),
            LogicalPlan::Join { left, right, .. } => left.is_stream() || right.is_stream(),
        }
    }

    /// Index of the event-time column in the output, tracked through
    /// projections (the "timestamp propagation" concern from §7).
    pub fn timestamp_index(&self) -> Option<usize> {
        match self {
            LogicalPlan::Scan { ts_index, .. } => *ts_index,
            LogicalPlan::Filter { input, .. } => input.timestamp_index(),
            LogicalPlan::Project { input, exprs, .. } => {
                let ts = input.timestamp_index()?;
                exprs
                    .iter()
                    .position(|e| matches!(e, ScalarExpr::InputRef { index, .. } if *index == ts))
            }
            LogicalPlan::Aggregate { window, .. } => match window {
                // START() of the window is re-exposed via agg calls, not a
                // pass-through column; conservatively report none unless the
                // first agg is START.
                GroupWindow::None => None,
                _ => None,
            },
            LogicalPlan::SlidingWindow { input, .. } => input.timestamp_index(),
            LogicalPlan::Join { left, right, .. } => left
                .timestamp_index()
                .or_else(|| right.timestamp_index().map(|i| left.arity() + i)),
        }
    }

    /// Multi-line indented plan rendering (EXPLAIN output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan {
                object,
                stream,
                topic,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Scan[{object}{}] topic={topic}\n",
                    if *stream { ", stream" } else { ", bounded" }
                ));
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!(
                    "{pad}Filter[{}]\n",
                    predicate.display(&input.output_names())
                ));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Project {
                input,
                exprs,
                names,
            } => {
                let inner = input.output_names();
                let items: Vec<String> = exprs
                    .iter()
                    .zip(names)
                    .map(|(e, n)| format!("{}={}", n, e.display(&inner)))
                    .collect();
                out.push_str(&format!("{pad}Project[{}]\n", items.join(", ")));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Aggregate {
                input,
                window,
                keys,
                aggs,
                ..
            } => {
                let inner = input.output_names();
                let keys: Vec<String> = keys.iter().map(|k| k.display(&inner)).collect();
                let aggs: Vec<String> = aggs.iter().map(|a| a.func.name()).collect();
                let w = match window {
                    GroupWindow::None => "".to_string(),
                    GroupWindow::Tumble { size_ms, .. } => format!(" tumble={size_ms}ms"),
                    GroupWindow::Hop {
                        emit_ms, retain_ms, ..
                    } => {
                        format!(" hop=emit:{emit_ms}ms,retain:{retain_ms}ms")
                    }
                };
                out.push_str(&format!(
                    "{pad}Aggregate[keys=({}) aggs=({}){w}]\n",
                    keys.join(", "),
                    aggs.join(", ")
                ));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::SlidingWindow {
                input,
                range_ms,
                rows,
                aggs,
                ..
            } => {
                let frame = match (range_ms, rows) {
                    (Some(ms), _) => format!("range={ms}ms"),
                    (None, Some(n)) => format!("rows={n}"),
                    (None, None) => "unbounded".to_string(),
                };
                let aggs: Vec<String> = aggs.iter().map(|a| a.func.name()).collect();
                out.push_str(&format!(
                    "{pad}SlidingWindow[{frame} aggs=({})]\n",
                    aggs.join(", ")
                ));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                equi,
                time_bound,
                ..
            } => {
                let tb = match time_bound {
                    Some(b) => format!(" window=[-{}ms,+{}ms]", b.lower_ms, b.upper_ms),
                    None => String::new(),
                };
                out.push_str(&format!("{pad}Join[{kind:?} on {equi:?}{tb}]\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(stream: bool) -> LogicalPlan {
        LogicalPlan::Scan {
            object: "Orders".into(),
            kind: ObjectKind::Stream,
            topic: "orders".into(),
            names: vec!["rowtime".into(), "productId".into(), "units".into()],
            types: vec![Schema::Timestamp, Schema::Int, Schema::Int],
            stream,
            ts_index: Some(0),
        }
    }

    #[test]
    fn output_shape_through_project() {
        let p = LogicalPlan::Project {
            input: Box::new(scan(true)),
            exprs: vec![
                ScalarExpr::input(2, Schema::Int),
                ScalarExpr::input(0, Schema::Timestamp),
            ],
            names: vec!["units".into(), "rowtime".into()],
        };
        assert_eq!(p.output_names(), vec!["units", "rowtime"]);
        assert_eq!(p.output_types(), vec![Schema::Int, Schema::Timestamp]);
        assert_eq!(
            p.timestamp_index(),
            Some(1),
            "timestamp tracked through reorder"
        );
        assert!(p.is_stream());
    }

    #[test]
    fn dropping_timestamp_loses_index() {
        let p = LogicalPlan::Project {
            input: Box::new(scan(true)),
            exprs: vec![ScalarExpr::input(2, Schema::Int)],
            names: vec!["units".into()],
        };
        assert_eq!(p.timestamp_index(), None);
    }

    #[test]
    fn join_output_concatenates() {
        let j = LogicalPlan::Join {
            left: Box::new(scan(true)),
            right: Box::new(scan(false)),
            kind: JoinKind::Inner,
            equi: vec![(1, 1)],
            time_bound: None,
            residual: None,
        };
        assert_eq!(j.arity(), 6);
        assert!(j.is_stream(), "stream ⋈ bounded is a stream");
    }

    #[test]
    fn agg_result_types() {
        let count = AggCall {
            func: AggFunc::CountStar,
            arg: None,
            distinct: false,
            output_name: "c".into(),
        };
        assert_eq!(count.result_type(), Schema::Long);
        let avg = AggCall {
            func: AggFunc::Avg,
            arg: Some(ScalarExpr::input(0, Schema::Int)),
            distinct: false,
            output_name: "a".into(),
        };
        assert_eq!(avg.result_type(), Schema::Double.optional());
        let start = AggCall {
            func: AggFunc::Start,
            arg: Some(ScalarExpr::input(0, Schema::Timestamp)),
            distinct: false,
            output_name: "s".into(),
        };
        assert_eq!(start.result_type(), Schema::Timestamp);
    }

    #[test]
    fn explain_renders_tree() {
        let f = LogicalPlan::Filter {
            input: Box::new(scan(true)),
            predicate: ScalarExpr::Binary {
                op: crate::types::BinOp::Gt,
                left: Box::new(ScalarExpr::input(2, Schema::Int)),
                right: Box::new(ScalarExpr::Literal(samzasql_serde::Value::Int(50))),
                ty: Schema::Boolean,
            },
        };
        let text = f.explain();
        assert!(text.contains("Filter[units > 50]"), "{text}");
        assert!(text.contains("Scan[Orders, stream]"), "{text}");
    }
}
