//! # samzasql-planner
//!
//! The Calcite-like query-planning substrate: catalog, validator, logical
//! relational algebra, rule-based optimizer, and physical plans for the
//! SamzaSQL operator layer.
//!
//! Planning follows the paper's pipeline (§4.2, Figure 3):
//!
//! ```text
//! SQL text ──parse──▶ AST ──validate──▶ logical plan ──optimize──▶
//!     optimized logical plan ──to_physical──▶ SamzaSQL physical plan
//! ```
//!
//! The physical plan is a tree of relational operators (scan at the leaves;
//! filter/project/window/join above; an insert at the root) that the
//! `samzasql-core` crate turns into an operator DAG ("message router") inside
//! each Samza task. Two-step planning works by shipping the *SQL text* plus
//! catalog metadata through the metadata store and re-running this planner at
//! task initialization — which is exactly what SamzaSQL does with ZooKeeper.
//!
//! ```
//! use samzasql_planner::{Catalog, Planner};
//! use samzasql_serde::Schema;
//!
//! let mut catalog = Catalog::new();
//! catalog.register_stream("Orders", "orders", Schema::record("Orders", vec![
//!     ("rowtime", Schema::Timestamp),
//!     ("productId", Schema::Int),
//!     ("orderId", Schema::Long),
//!     ("units", Schema::Int),
//! ]), "rowtime").unwrap();
//!
//! let planner = Planner::new(catalog);
//! let plan = planner.plan("SELECT STREAM * FROM Orders WHERE units > 50").unwrap();
//! assert!(plan.is_stream);
//! ```

pub mod catalog;
pub mod error;
pub mod logical;
pub mod physical;
pub mod planner_api;
pub mod rules;
pub mod types;
pub mod validator;

pub use catalog::{Catalog, CatalogObject, ObjectKind};
pub use error::{PlanError, Result};
pub use logical::{AggCall, AggFunc, GroupWindow, LogicalPlan, TimeBound};
pub use physical::PhysicalPlan;
pub use planner_api::{PlanCheck, PlannedQuery, Planner};
pub use types::{BinOp, ScalarExpr, ScalarFunc};
