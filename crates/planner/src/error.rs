//! Planning and validation errors.

use samzasql_parser::ParseError;
use std::fmt;

pub type Result<T> = std::result::Result<T, PlanError>;

/// Errors from parsing, validation, or physical planning.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The SQL failed to parse.
    Parse(ParseError),
    /// Unknown stream/table/view.
    UnknownRelation(String),
    /// Unknown column, with the scope it was looked up in.
    UnknownColumn { column: String, scope: String },
    /// Ambiguous unqualified column.
    AmbiguousColumn(String),
    /// A type error in an expression.
    Type(String),
    /// Valid SQL that this dialect/engine does not support.
    Unsupported(String),
    /// Semantic violations (e.g. aggregates outside GROUP BY context).
    Semantic(String),
    /// Catalog registration problems.
    Catalog(String),
    /// The plan failed a post-planning static-analysis check; the payload is
    /// the analyzer's rendered diagnostics.
    Analysis(String),
}

impl PlanError {
    /// The identifier that best localizes this error in the SQL text, when
    /// one exists. Diagnostics renderers use it to attach a source span;
    /// errors without a hint span the whole statement.
    pub fn span_hint(&self) -> Option<&str> {
        match self {
            PlanError::UnknownRelation(r) => Some(r),
            PlanError::UnknownColumn { column, .. } => Some(column),
            PlanError::AmbiguousColumn(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Parse(e) => write!(f, "{e}"),
            PlanError::UnknownRelation(r) => write!(f, "unknown stream or table: {r}"),
            PlanError::UnknownColumn { column, scope } => {
                write!(f, "unknown column {column} in {scope}")
            }
            PlanError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            PlanError::Type(msg) => write!(f, "type error: {msg}"),
            PlanError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            PlanError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            PlanError::Catalog(msg) => write!(f, "catalog error: {msg}"),
            PlanError::Analysis(msg) => write!(f, "plan analysis failed:\n{msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<ParseError> for PlanError {
    fn from(e: ParseError) -> Self {
        PlanError::Parse(e)
    }
}
