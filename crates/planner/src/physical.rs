//! Physical plans: the SamzaSQL operator-layer tree.
//!
//! Conversion from the optimized logical plan decides *how* each relational
//! operator executes on Samza:
//!
//! * stream-to-relation joins become bootstrap-stream joins against a local
//!   KV cache (§4.4);
//! * stream-to-stream joins become symmetric windowed joins keeping both
//!   sides' recent tuples in local state (§3.8.1);
//! * a [`PhysicalPlan::Repartition`] stage is inserted when a join needs the
//!   stream keyed differently than the producer partitioned it — the paper
//!   lists this as future work (§7); we implement the basic form.

use crate::catalog::{Catalog, ObjectKind};
use crate::error::{PlanError, Result};
use crate::logical::{AggCall, GroupWindow, LogicalPlan, TimeBound};
use crate::types::ScalarExpr;
use samzasql_parser::ast::JoinKind;
use samzasql_serde::{Schema, SerdeFormat};

/// The physical operator tree executed inside each SamzaSQL task.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Leaf: consume a topic, decode messages (Avro→array, Figure 4).
    Scan {
        topic: String,
        names: Vec<String>,
        types: Vec<Schema>,
        format: SerdeFormat,
        /// Bounded scans stop at the offset captured at job start (§3.3,
        /// stream-as-table).
        bounded: bool,
        ts_index: Option<usize>,
    },
    Filter {
        input: Box<PhysicalPlan>,
        predicate: ScalarExpr,
    },
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<ScalarExpr>,
        names: Vec<String>,
    },
    /// Hopping/tumbling aggregate operator ("streaming aggregate", §4.3).
    WindowAggregate {
        input: Box<PhysicalPlan>,
        window: GroupWindow,
        keys: Vec<ScalarExpr>,
        key_names: Vec<String>,
        aggs: Vec<AggCall>,
    },
    /// The sliding-window operator of Algorithm 1.
    SlidingWindow {
        input: Box<PhysicalPlan>,
        partition_by: Vec<ScalarExpr>,
        ts_index: usize,
        range_ms: Option<i64>,
        rows: Option<u64>,
        aggs: Vec<AggCall>,
    },
    /// Symmetric windowed stream-to-stream join.
    StreamToStreamJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        kind: JoinKind,
        equi: Vec<(usize, usize)>,
        time_bound: TimeBound,
        residual: Option<ScalarExpr>,
    },
    /// Stream joined against a bootstrap-cached relation (§4.4).
    StreamToRelationJoin {
        stream: Box<PhysicalPlan>,
        relation_topic: String,
        relation_names: Vec<String>,
        relation_types: Vec<Schema>,
        /// Index of the relation's key column for the cache.
        relation_key: usize,
        /// Equi pairs as (stream output index, relation index).
        equi: Vec<(usize, usize)>,
        /// True when the stream is the left side of the original join
        /// (controls output column order).
        stream_is_left: bool,
        kind: JoinKind,
        residual: Option<ScalarExpr>,
    },
    /// Re-key the stream through an intermediate topic (§7 future work).
    Repartition {
        input: Box<PhysicalPlan>,
        key_index: usize,
    },
}

impl PhysicalPlan {
    /// Output column names.
    pub fn output_names(&self) -> Vec<String> {
        match self {
            PhysicalPlan::Scan { names, .. } => names.clone(),
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Repartition { input, .. } => {
                input.output_names()
            }
            PhysicalPlan::Project { names, .. } => names.clone(),
            PhysicalPlan::WindowAggregate {
                key_names, aggs, ..
            } => {
                let mut out = key_names.clone();
                out.extend(aggs.iter().map(|a| a.output_name.clone()));
                out
            }
            PhysicalPlan::SlidingWindow { input, aggs, .. } => {
                let mut out = input.output_names();
                out.extend(aggs.iter().map(|a| a.output_name.clone()));
                out
            }
            PhysicalPlan::StreamToStreamJoin { left, right, .. } => {
                let mut out = left.output_names();
                out.extend(right.output_names());
                out
            }
            PhysicalPlan::StreamToRelationJoin {
                stream,
                relation_names,
                stream_is_left,
                ..
            } => {
                if *stream_is_left {
                    let mut out = stream.output_names();
                    out.extend(relation_names.clone());
                    out
                } else {
                    let mut out = relation_names.clone();
                    out.extend(stream.output_names());
                    out
                }
            }
        }
    }

    /// Output column types.
    pub fn output_types(&self) -> Vec<Schema> {
        match self {
            PhysicalPlan::Scan { types, .. } => types.clone(),
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Repartition { input, .. } => {
                input.output_types()
            }
            PhysicalPlan::Project { exprs, .. } => exprs.iter().map(|e| e.ty()).collect(),
            PhysicalPlan::WindowAggregate { keys, aggs, .. } => {
                let mut out: Vec<Schema> = keys.iter().map(|k| k.ty()).collect();
                out.extend(aggs.iter().map(|a| a.result_type()));
                out
            }
            PhysicalPlan::SlidingWindow { input, aggs, .. } => {
                let mut out = input.output_types();
                out.extend(aggs.iter().map(|a| a.result_type()));
                out
            }
            PhysicalPlan::StreamToStreamJoin { left, right, .. } => {
                let mut out = left.output_types();
                out.extend(right.output_types());
                out
            }
            PhysicalPlan::StreamToRelationJoin {
                stream,
                relation_types,
                stream_is_left,
                ..
            } => {
                if *stream_is_left {
                    let mut out = stream.output_types();
                    out.extend(relation_types.clone());
                    out
                } else {
                    let mut out = relation_types.clone();
                    out.extend(stream.output_types());
                    out
                }
            }
        }
    }

    /// Topics this plan consumes, with a bootstrap flag per topic.
    pub fn input_topics(&self) -> Vec<(String, bool)> {
        let mut out = Vec::new();
        self.collect_topics(&mut out);
        out
    }

    fn collect_topics(&self, out: &mut Vec<(String, bool)>) {
        match self {
            PhysicalPlan::Scan { topic, .. } => out.push((topic.clone(), false)),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::WindowAggregate { input, .. }
            | PhysicalPlan::SlidingWindow { input, .. }
            | PhysicalPlan::Repartition { input, .. } => input.collect_topics(out),
            PhysicalPlan::StreamToStreamJoin { left, right, .. } => {
                left.collect_topics(out);
                right.collect_topics(out);
            }
            PhysicalPlan::StreamToRelationJoin {
                stream,
                relation_topic,
                ..
            } => {
                stream.collect_topics(out);
                out.push((relation_topic.clone(), true));
            }
        }
    }

    /// True when the plan keeps task-local window/join state (needs a store).
    pub fn needs_local_state(&self) -> bool {
        match self {
            PhysicalPlan::Scan { .. } => false,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Repartition { input, .. } => input.needs_local_state(),
            PhysicalPlan::WindowAggregate { .. }
            | PhysicalPlan::SlidingWindow { .. }
            | PhysicalPlan::StreamToStreamJoin { .. }
            | PhysicalPlan::StreamToRelationJoin { .. } => true,
        }
    }

    /// The column this plan's output is partitioned by, as
    /// `(output index, column name)`, when statically known.
    ///
    /// Provenance flows bottom-up from the catalog's declared
    /// `partition_key` on the scanned object (or a `Repartition` stage,
    /// which re-keys unconditionally) through the key-preserving operators.
    /// `None` means "unknown", not "unpartitioned" — producers that never
    /// declared a key are simply not tracked.
    pub fn partition_column(&self, catalog: &Catalog) -> Option<(usize, String)> {
        match self {
            PhysicalPlan::Scan { topic, names, .. } => {
                let obj = catalog.object_by_topic(topic)?;
                let pk = obj.partition_key.as_deref()?;
                let idx = names.iter().position(|n| n.eq_ignore_ascii_case(pk))?;
                Some((idx, names[idx].clone()))
            }
            PhysicalPlan::Repartition { input, key_index } => {
                let names = input.output_names();
                names.get(*key_index).map(|n| (*key_index, n.clone()))
            }
            PhysicalPlan::Filter { input, .. } => input.partition_column(catalog),
            PhysicalPlan::Project {
                input,
                exprs,
                names,
            } => {
                let (i, _) = input.partition_column(catalog)?;
                let j = exprs
                    .iter()
                    .position(|e| matches!(e, ScalarExpr::InputRef { index, .. } if *index == i))?;
                Some((j, names[j].clone()))
            }
            PhysicalPlan::WindowAggregate {
                input,
                keys,
                key_names,
                ..
            } => {
                let (i, _) = input.partition_column(catalog)?;
                let k = keys
                    .iter()
                    .position(|e| matches!(e, ScalarExpr::InputRef { index, .. } if *index == i))?;
                Some((k, key_names[k].clone()))
            }
            PhysicalPlan::SlidingWindow { input, .. } => input.partition_column(catalog),
            PhysicalPlan::StreamToStreamJoin { left, .. } => left.partition_column(catalog),
            PhysicalPlan::StreamToRelationJoin {
                stream,
                relation_names,
                stream_is_left,
                ..
            } => {
                let (i, n) = stream.partition_column(catalog)?;
                if *stream_is_left {
                    Some((i, n))
                } else {
                    Some((i + relation_names.len(), n))
                }
            }
        }
    }

    /// Indented plan rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, None, &mut out);
        out
    }

    /// Indented plan rendering with per-stage partitioning annotations, so
    /// `RepartitionOp` placement is auditable from EXPLAIN output.
    pub fn explain_with_keys(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        self.explain_into(0, Some(catalog), &mut out);
        out
    }

    /// Pre-order `(depth, label)` plan lines — same node order and labels
    /// as [`explain`](PhysicalPlan::explain), but structured so callers
    /// (EXPLAIN ANALYZE) can annotate each line with runtime statistics.
    /// The pre-order here deliberately matches the router's operator
    /// construction order, which walks the same tree.
    pub fn explain_lines(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        self.explain_lines_into(0, &mut out);
        out
    }

    fn explain_lines_into(&self, depth: usize, out: &mut Vec<(usize, String)>) {
        out.push((depth, self.explain_label(None)));
        match self {
            PhysicalPlan::Scan { .. } => {}
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::WindowAggregate { input, .. }
            | PhysicalPlan::SlidingWindow { input, .. }
            | PhysicalPlan::Repartition { input, .. } => input.explain_lines_into(depth + 1, out),
            PhysicalPlan::StreamToStreamJoin { left, right, .. } => {
                left.explain_lines_into(depth + 1, out);
                right.explain_lines_into(depth + 1, out);
            }
            PhysicalPlan::StreamToRelationJoin { stream, .. } => {
                stream.explain_lines_into(depth + 1, out)
            }
        }
    }

    fn explain_into(&self, depth: usize, catalog: Option<&Catalog>, out: &mut String) {
        let pad = "  ".repeat(depth);
        let line = self.explain_label(catalog);
        out.push_str(&format!("{pad}{line}\n"));
        match self {
            PhysicalPlan::Scan { .. } => {}
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::WindowAggregate { input, .. }
            | PhysicalPlan::SlidingWindow { input, .. }
            | PhysicalPlan::Repartition { input, .. } => {
                input.explain_into(depth + 1, catalog, out)
            }
            PhysicalPlan::StreamToStreamJoin { left, right, .. } => {
                left.explain_into(depth + 1, catalog, out);
                right.explain_into(depth + 1, catalog, out);
            }
            PhysicalPlan::StreamToRelationJoin { stream, .. } => {
                stream.explain_into(depth + 1, catalog, out)
            }
        }
    }

    /// The one-line label for this node, with a `partition=` suffix when a
    /// catalog is supplied (the `explain_with_keys` mode).
    fn explain_label(&self, catalog: Option<&Catalog>) -> String {
        let line = match self {
            PhysicalPlan::Scan {
                topic,
                bounded,
                format,
                ..
            } => format!(
                "ScanOp[topic={topic}, format={format}{}]",
                if *bounded { ", bounded" } else { "" }
            ),
            PhysicalPlan::Filter { input, predicate } => {
                format!("FilterOp[{}]", predicate.display(&input.output_names()))
            }
            PhysicalPlan::Project {
                input,
                exprs,
                names,
            } => {
                let inner = input.output_names();
                let items: Vec<String> = exprs
                    .iter()
                    .zip(names)
                    .map(|(e, n)| format!("{n}={}", e.display(&inner)))
                    .collect();
                format!("ProjectOp[{}]", items.join(", "))
            }
            PhysicalPlan::WindowAggregate { window, aggs, .. } => {
                let w = match window {
                    GroupWindow::None => "relational".to_string(),
                    GroupWindow::Tumble { size_ms, .. } => format!("tumble({size_ms}ms)"),
                    GroupWindow::Hop {
                        emit_ms,
                        retain_ms,
                        align_ms,
                        ..
                    } => {
                        format!("hop(emit={emit_ms}ms, retain={retain_ms}ms, align={align_ms}ms)")
                    }
                };
                let aggs: Vec<String> = aggs.iter().map(|a| a.func.name()).collect();
                format!("WindowAggregateOp[{w}, aggs=({})]", aggs.join(", "))
            }
            PhysicalPlan::SlidingWindow {
                range_ms,
                rows,
                aggs,
                ..
            } => {
                let frame = match (range_ms, rows) {
                    (Some(ms), _) => format!("range={ms}ms"),
                    (None, Some(n)) => format!("rows={n}"),
                    (None, None) => "unbounded".into(),
                };
                let aggs: Vec<String> = aggs.iter().map(|a| a.func.name()).collect();
                format!("SlidingWindowOp[{frame}, aggs=({})]", aggs.join(", "))
            }
            PhysicalPlan::StreamToStreamJoin {
                time_bound, equi, ..
            } => format!(
                "StreamToStreamJoinOp[on {equi:?}, window=[-{}ms,+{}ms]]",
                time_bound.lower_ms, time_bound.upper_ms
            ),
            PhysicalPlan::StreamToRelationJoin {
                relation_topic,
                equi,
                ..
            } => format!(
                "StreamToRelationJoinOp[relation={relation_topic} (bootstrap), on {equi:?}]"
            ),
            PhysicalPlan::Repartition { key_index, .. } => {
                format!("RepartitionOp[key=#{key_index}]")
            }
        };
        match catalog {
            Some(c) => {
                let key = self
                    .partition_column(c)
                    .map(|(_, n)| n)
                    .unwrap_or_else(|| "?".into());
                format!("{line} partition={key}")
            }
            None => line,
        }
    }
}

/// Convert an optimized logical plan to a physical plan.
pub fn to_physical(plan: &LogicalPlan, catalog: &Catalog) -> Result<PhysicalPlan> {
    match plan {
        LogicalPlan::Scan {
            object,
            topic,
            names,
            types,
            stream,
            ts_index,
            kind,
        } => {
            let _ = kind;
            let _ = object;
            Ok(PhysicalPlan::Scan {
                topic: topic.clone(),
                names: names.clone(),
                types: types.clone(),
                format: SerdeFormat::Avro,
                bounded: !stream,
                ts_index: *ts_index,
            })
        }
        LogicalPlan::Filter { input, predicate } => Ok(PhysicalPlan::Filter {
            input: Box::new(to_physical(input, catalog)?),
            predicate: predicate.clone(),
        }),
        LogicalPlan::Project {
            input,
            exprs,
            names,
        } => Ok(PhysicalPlan::Project {
            input: Box::new(to_physical(input, catalog)?),
            exprs: exprs.clone(),
            names: names.clone(),
        }),
        LogicalPlan::Aggregate {
            input,
            window,
            keys,
            key_names,
            aggs,
        } => Ok(PhysicalPlan::WindowAggregate {
            input: Box::new(to_physical(input, catalog)?),
            window: window.clone(),
            keys: keys.clone(),
            key_names: key_names.clone(),
            aggs: aggs.clone(),
        }),
        LogicalPlan::SlidingWindow {
            input,
            partition_by,
            ts_index,
            range_ms,
            rows,
            aggs,
        } => Ok(PhysicalPlan::SlidingWindow {
            input: Box::new(to_physical(input, catalog)?),
            partition_by: partition_by.clone(),
            ts_index: *ts_index,
            range_ms: *range_ms,
            rows: *rows,
            aggs: aggs.clone(),
        }),
        LogicalPlan::Join {
            left,
            right,
            kind,
            equi,
            time_bound,
            residual,
        } => plan_join(
            left,
            right,
            *kind,
            equi,
            *time_bound,
            residual.clone(),
            catalog,
        ),
    }
}

/// True when the subtree is a relation (bounded table scan, possibly behind
/// filters/projections) suitable for the bootstrap cache side of a join.
fn relation_scan(plan: &LogicalPlan) -> Option<(&str, &Vec<String>, &Vec<Schema>)> {
    match plan {
        LogicalPlan::Scan {
            kind: ObjectKind::Table,
            topic,
            names,
            types,
            ..
        } => Some((topic, names, types)),
        _ => None,
    }
}

fn plan_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    kind: JoinKind,
    equi: &[(usize, usize)],
    time_bound: Option<TimeBound>,
    residual: Option<ScalarExpr>,
    catalog: &Catalog,
) -> Result<PhysicalPlan> {
    let left_is_relation = relation_scan(left).is_some();
    let right_is_relation = relation_scan(right).is_some();

    match (left_is_relation, right_is_relation) {
        (false, true) | (true, false) => {
            let (stream_side, relation_side, stream_is_left) = if right_is_relation {
                (left, right, true)
            } else {
                (right, left, false)
            };
            let (topic, names, types) =
                relation_scan(relation_side).expect("checked relation side");
            // Equi pairs normalized to (stream index, relation index).
            let norm_equi: Vec<(usize, usize)> = if stream_is_left {
                equi.to_vec()
            } else {
                equi.iter().map(|(l, r)| (*r, *l)).collect()
            };
            if norm_equi.len() != 1 {
                return Err(PlanError::Unsupported(
                    "stream-to-relation joins support exactly one equi key".into(),
                ));
            }
            let (stream_key, relation_key) = norm_equi[0];
            let mut stream_plan = to_physical(stream_side, catalog)?;
            // Repartition when the stream's partitioning column is known and
            // differs from the join key (§7 future work, implemented).
            if let LogicalPlan::Scan { object, .. } = find_scan(stream_side) {
                if let Ok(obj) = catalog.get(object) {
                    if let Some(pk) = &obj.partition_key {
                        let stream_names = stream_plan.output_names();
                        let join_col = stream_names.get(stream_key).cloned().unwrap_or_default();
                        if !pk.eq_ignore_ascii_case(&join_col) {
                            stream_plan = PhysicalPlan::Repartition {
                                input: Box::new(stream_plan),
                                key_index: stream_key,
                            };
                        }
                    }
                }
            }
            Ok(PhysicalPlan::StreamToRelationJoin {
                stream: Box::new(stream_plan),
                relation_topic: topic.to_string(),
                relation_names: names.clone(),
                relation_types: types.clone(),
                relation_key,
                equi: norm_equi,
                stream_is_left,
                kind,
                residual,
            })
        }
        (false, false) => {
            let tb = time_bound.ok_or_else(|| {
                PlanError::Unsupported(
                    "stream-to-stream joins require a sliding window in the join \
                     condition (ts BETWEEN other - INTERVAL AND other + INTERVAL)"
                        .into(),
                )
            })?;
            Ok(PhysicalPlan::StreamToStreamJoin {
                left: Box::new(to_physical(left, catalog)?),
                right: Box::new(to_physical(right, catalog)?),
                kind,
                equi: equi.to_vec(),
                time_bound: tb,
                residual,
            })
        }
        (true, true) => Err(PlanError::Unsupported(
            "relation-to-relation joins are not executable as streaming jobs; \
             stage one side as a stream"
                .into(),
        )),
    }
}

/// The (leftmost) scan under a chain of unary nodes.
fn find_scan(plan: &LogicalPlan) -> &LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::SlidingWindow { input, .. } => find_scan(input),
        LogicalPlan::Join { left, .. } => find_scan(left),
        scan => scan,
    }
}
