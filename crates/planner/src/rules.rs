//! Rule-based logical optimizer.
//!
//! §4.2: SamzaSQL applies "some generic optimizations bundled with Apache
//! Calcite" on the logical plan. The equivalents here:
//!
//! * **constant folding** — evaluate constant subexpressions at plan time
//! * **filter merging** — `Filter(Filter(x))` ⇒ one conjunctive filter
//! * **predicate pushdown** — move filters below projections and into join
//!   inputs, so SamzaSQL drops tuples before paying conversion costs
//! * **projection merging** — collapse `Project(Project(x))`
//! * **identity-projection removal** — drop projections that only renumber
//!
//! Rules run bottom-up to a fixpoint (bounded iterations).

use crate::logical::LogicalPlan;
use crate::types::{BinOp, ScalarExpr};
use samzasql_serde::Value;

/// Optimize a plan: apply all rules until nothing changes (or the iteration
/// bound is hit).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut current = plan;
    for _ in 0..16 {
        let (next, changed) = rewrite(current);
        current = next;
        if !changed {
            break;
        }
    }
    current
}

fn rewrite(plan: LogicalPlan) -> (LogicalPlan, bool) {
    // Recurse first (bottom-up).
    let (plan, mut changed) = match plan {
        LogicalPlan::Filter { input, predicate } => {
            let (input, c) = rewrite(*input);
            (
                LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                },
                c,
            )
        }
        LogicalPlan::Project {
            input,
            exprs,
            names,
        } => {
            let (input, c) = rewrite(*input);
            (
                LogicalPlan::Project {
                    input: Box::new(input),
                    exprs,
                    names,
                },
                c,
            )
        }
        LogicalPlan::Aggregate {
            input,
            window,
            keys,
            key_names,
            aggs,
        } => {
            let (input, c) = rewrite(*input);
            (
                LogicalPlan::Aggregate {
                    input: Box::new(input),
                    window,
                    keys,
                    key_names,
                    aggs,
                },
                c,
            )
        }
        LogicalPlan::SlidingWindow {
            input,
            partition_by,
            ts_index,
            range_ms,
            rows,
            aggs,
        } => {
            let (input, c) = rewrite(*input);
            (
                LogicalPlan::SlidingWindow {
                    input: Box::new(input),
                    partition_by,
                    ts_index,
                    range_ms,
                    rows,
                    aggs,
                },
                c,
            )
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            equi,
            time_bound,
            residual,
        } => {
            let (l, cl) = rewrite(*left);
            let (r, cr) = rewrite(*right);
            (
                LogicalPlan::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    kind,
                    equi,
                    time_bound,
                    residual,
                },
                cl || cr,
            )
        }
        leaf => (leaf, false),
    };

    // Apply one local rule if possible.
    let (plan, applied) = apply_local(plan);
    changed |= applied;
    (plan, changed)
}

fn apply_local(plan: LogicalPlan) -> (LogicalPlan, bool) {
    match plan {
        // Constant-fold predicates and drop `WHERE TRUE`.
        LogicalPlan::Filter { input, predicate } => {
            let folded = fold(&predicate);
            if let ScalarExpr::Literal(Value::Boolean(true)) = folded {
                return (*input, true);
            }
            let fold_changed = folded != predicate;
            // Merge stacked filters.
            if let LogicalPlan::Filter {
                input: inner,
                predicate: p2,
            } = *input
            {
                let merged = ScalarExpr::Binary {
                    op: BinOp::And,
                    left: Box::new(p2),
                    right: Box::new(folded),
                    ty: samzasql_serde::Schema::Boolean,
                };
                return (
                    LogicalPlan::Filter {
                        input: inner,
                        predicate: merged,
                    },
                    true,
                );
            }
            // Push below a projection: rewrite predicate in input space.
            if let LogicalPlan::Project {
                input: inner,
                exprs,
                names,
            } = *input
            {
                if exprs.iter().all(is_pushable) {
                    let pushed = folded.substitute(&exprs);
                    return (
                        LogicalPlan::Project {
                            input: Box::new(LogicalPlan::Filter {
                                input: inner,
                                predicate: pushed,
                            }),
                            exprs,
                            names,
                        },
                        true,
                    );
                }
                return (
                    LogicalPlan::Filter {
                        input: Box::new(LogicalPlan::Project {
                            input: inner,
                            exprs,
                            names,
                        }),
                        predicate: folded,
                    },
                    fold_changed,
                );
            }
            // Push into join sides when the conjunct only touches one side.
            if let LogicalPlan::Join {
                left,
                right,
                kind,
                equi,
                time_bound,
                residual,
            } = *input
            {
                let larity = left.arity();
                let total = larity + right.arity();
                let mut conjuncts = Vec::new();
                flatten_and(&folded, &mut conjuncts);
                let mut left_preds = Vec::new();
                let mut right_preds = Vec::new();
                let mut kept = Vec::new();
                for c in conjuncts {
                    let refs = c.input_refs();
                    if !refs.is_empty() && refs.iter().all(|i| *i < larity) {
                        left_preds.push(c);
                    } else if !refs.is_empty() && refs.iter().all(|i| *i >= larity && *i < total) {
                        right_preds.push(c.remap_inputs(&|i| i - larity));
                    } else {
                        kept.push(c);
                    }
                }
                if left_preds.is_empty() && right_preds.is_empty() {
                    let joined = LogicalPlan::Join {
                        left,
                        right,
                        kind,
                        equi,
                        time_bound,
                        residual,
                    };
                    return (
                        LogicalPlan::Filter {
                            input: Box::new(joined),
                            predicate: folded,
                        },
                        fold_changed,
                    );
                }
                let new_left = wrap_filter(*left, left_preds);
                let new_right = wrap_filter(*right, right_preds);
                let joined = LogicalPlan::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind,
                    equi,
                    time_bound,
                    residual,
                };
                return (wrap_filter(joined, kept), true);
            }
            (
                LogicalPlan::Filter {
                    input,
                    predicate: folded,
                },
                fold_changed,
            )
        }
        // Merge stacked projections; drop identity projections.
        LogicalPlan::Project {
            input,
            exprs,
            names,
        } => {
            let folded: Vec<ScalarExpr> = exprs.iter().map(fold).collect();
            let fold_changed = folded != exprs;
            if let LogicalPlan::Project {
                input: inner,
                exprs: inner_exprs,
                ..
            } = *input
            {
                let merged: Vec<ScalarExpr> =
                    folded.iter().map(|e| e.substitute(&inner_exprs)).collect();
                return (
                    LogicalPlan::Project {
                        input: inner,
                        exprs: merged,
                        names,
                    },
                    true,
                );
            }
            // Identity projection (same arity, ref i at position i, names
            // unchanged) disappears.
            let identity = folded.len() == input.arity()
                && folded
                    .iter()
                    .enumerate()
                    .all(|(i, e)| matches!(e, ScalarExpr::InputRef { index, .. } if *index == i))
                && names == input.output_names();
            if identity {
                return (*input, true);
            }
            (
                LogicalPlan::Project {
                    input,
                    exprs: folded,
                    names,
                },
                fold_changed,
            )
        }
        other => (other, false),
    }
}

fn wrap_filter(plan: LogicalPlan, preds: Vec<ScalarExpr>) -> LogicalPlan {
    match preds.into_iter().reduce(|a, b| ScalarExpr::Binary {
        op: BinOp::And,
        left: Box::new(a),
        right: Box::new(b),
        ty: samzasql_serde::Schema::Boolean,
    }) {
        Some(p) => LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: p,
        },
        None => plan,
    }
}

fn flatten_and(expr: &ScalarExpr, out: &mut Vec<ScalarExpr>) {
    if let ScalarExpr::Binary {
        op: BinOp::And,
        left,
        right,
        ..
    } = expr
    {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(expr.clone());
    }
}

/// Projections that are safe to substitute a predicate through (cheap,
/// deterministic expressions — everything in this dialect qualifies).
fn is_pushable(_e: &ScalarExpr) -> bool {
    true
}

/// Constant folding over a scalar expression.
pub fn fold(expr: &ScalarExpr) -> ScalarExpr {
    match expr {
        ScalarExpr::Binary {
            op,
            left,
            right,
            ty,
        } => {
            let l = fold(left);
            let r = fold(right);
            if let (ScalarExpr::Literal(a), ScalarExpr::Literal(b)) = (&l, &r) {
                if let Some(v) = fold_binary(*op, a, b) {
                    return ScalarExpr::Literal(v);
                }
            }
            // Boolean short circuits: TRUE AND x ⇒ x, FALSE OR x ⇒ x, …
            match (op, &l, &r) {
                (BinOp::And, ScalarExpr::Literal(Value::Boolean(true)), x)
                | (BinOp::And, x, ScalarExpr::Literal(Value::Boolean(true)))
                | (BinOp::Or, ScalarExpr::Literal(Value::Boolean(false)), x)
                | (BinOp::Or, x, ScalarExpr::Literal(Value::Boolean(false))) => x.clone(),
                (BinOp::And, ScalarExpr::Literal(Value::Boolean(false)), _)
                | (BinOp::And, _, ScalarExpr::Literal(Value::Boolean(false))) => {
                    ScalarExpr::Literal(Value::Boolean(false))
                }
                (BinOp::Or, ScalarExpr::Literal(Value::Boolean(true)), _)
                | (BinOp::Or, _, ScalarExpr::Literal(Value::Boolean(true))) => {
                    ScalarExpr::Literal(Value::Boolean(true))
                }
                _ => ScalarExpr::Binary {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                    ty: ty.clone(),
                },
            }
        }
        ScalarExpr::Not(e) => {
            let inner = fold(e);
            match inner {
                ScalarExpr::Literal(Value::Boolean(b)) => ScalarExpr::Literal(Value::Boolean(!b)),
                ScalarExpr::Not(inner2) => *inner2,
                other => ScalarExpr::Not(Box::new(other)),
            }
        }
        ScalarExpr::Neg(e) => {
            let inner = fold(e);
            match &inner {
                ScalarExpr::Literal(Value::Int(v)) => ScalarExpr::Literal(Value::Int(-v)),
                ScalarExpr::Literal(Value::Long(v)) => ScalarExpr::Literal(Value::Long(-v)),
                ScalarExpr::Literal(Value::Double(v)) => ScalarExpr::Literal(Value::Double(-v)),
                _ => ScalarExpr::Neg(Box::new(inner)),
            }
        }
        ScalarExpr::Case {
            branches,
            else_result,
            ty,
        } => ScalarExpr::Case {
            branches: branches.iter().map(|(w, t)| (fold(w), fold(t))).collect(),
            else_result: else_result.as_ref().map(|e| Box::new(fold(e))),
            ty: ty.clone(),
        },
        ScalarExpr::Call { func, args, ty } => ScalarExpr::Call {
            func: *func,
            args: args.iter().map(fold).collect(),
            ty: ty.clone(),
        },
        ScalarExpr::FloorTime { expr, unit_millis } => {
            let inner = fold(expr);
            if let ScalarExpr::Literal(v) = &inner {
                if let Some(ts) = v.as_i64() {
                    return ScalarExpr::Literal(Value::Timestamp(ts - ts.rem_euclid(*unit_millis)));
                }
            }
            ScalarExpr::FloorTime {
                expr: Box::new(inner),
                unit_millis: *unit_millis,
            }
        }
        ScalarExpr::IsNull { expr, negated } => {
            let inner = fold(expr);
            if let ScalarExpr::Literal(v) = &inner {
                return ScalarExpr::Literal(Value::Boolean(v.is_null() != *negated));
            }
            ScalarExpr::IsNull {
                expr: Box::new(inner),
                negated: *negated,
            }
        }
        ScalarExpr::Cast { expr, ty } => ScalarExpr::Cast {
            expr: Box::new(fold(expr)),
            ty: ty.clone(),
        },
        other => other.clone(),
    }
}

fn fold_binary(op: BinOp, a: &Value, b: &Value) -> Option<Value> {
    use BinOp::*;
    if a.is_null() || b.is_null() {
        // NULL propagates through comparisons/arithmetic (three-valued logic
        // handled at runtime; folding keeps NULL).
        return match op {
            And | Or => None,
            _ => Some(Value::Null),
        };
    }
    match op {
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let ord = a.sql_cmp(b)?;
            let v = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                NotEq => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Some(Value::Boolean(v))
        }
        Plus | Minus | Multiply | Divide | Modulo => {
            // Integer arithmetic when both integral, else double.
            match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y))
                    if !matches!(a, Value::Double(_) | Value::Float(_))
                        && !matches!(b, Value::Double(_) | Value::Float(_)) =>
                {
                    let v = match op {
                        Plus => x.checked_add(y)?,
                        Minus => x.checked_sub(y)?,
                        Multiply => x.checked_mul(y)?,
                        Divide => {
                            if y == 0 {
                                return None;
                            }
                            x / y
                        }
                        Modulo => {
                            if y == 0 {
                                return None;
                            }
                            x % y
                        }
                        _ => unreachable!(),
                    };
                    Some(Value::Long(v))
                }
                _ => {
                    let (x, y) = (a.as_f64()?, b.as_f64()?);
                    let v = match op {
                        Plus => x + y,
                        Minus => x - y,
                        Multiply => x * y,
                        Divide => x / y,
                        Modulo => x % y,
                        _ => unreachable!(),
                    };
                    Some(Value::Double(v))
                }
            }
        }
        And | Or => {
            let (x, y) = (a.as_bool()?, b.as_bool()?);
            Some(Value::Boolean(if op == And { x && y } else { x || y }))
        }
        Like => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ObjectKind;
    use samzasql_serde::Schema;

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            object: "Orders".into(),
            kind: ObjectKind::Stream,
            topic: "orders".into(),
            names: vec!["rowtime".into(), "productId".into(), "units".into()],
            types: vec![Schema::Timestamp, Schema::Int, Schema::Int],
            stream: true,
            ts_index: Some(0),
        }
    }

    fn lit(v: i32) -> ScalarExpr {
        ScalarExpr::Literal(Value::Int(v))
    }

    fn bin(op: BinOp, l: ScalarExpr, r: ScalarExpr, ty: Schema) -> ScalarExpr {
        ScalarExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
            ty,
        }
    }

    #[test]
    fn constant_folding_arithmetic_and_comparison() {
        let e = bin(BinOp::Plus, lit(2), lit(3), Schema::Int);
        assert_eq!(fold(&e), ScalarExpr::Literal(Value::Long(5)));
        let e = bin(BinOp::Gt, lit(5), lit(3), Schema::Boolean);
        assert_eq!(fold(&e), ScalarExpr::Literal(Value::Boolean(true)));
    }

    #[test]
    fn boolean_short_circuits() {
        let x = ScalarExpr::input(0, Schema::Boolean);
        let e = bin(
            BinOp::And,
            ScalarExpr::Literal(Value::Boolean(true)),
            x.clone(),
            Schema::Boolean,
        );
        assert_eq!(fold(&e), x);
        let e = bin(
            BinOp::And,
            ScalarExpr::Literal(Value::Boolean(false)),
            ScalarExpr::input(0, Schema::Boolean),
            Schema::Boolean,
        );
        assert_eq!(fold(&e), ScalarExpr::Literal(Value::Boolean(false)));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let e = bin(BinOp::Divide, lit(1), lit(0), Schema::Int);
        assert!(
            matches!(fold(&e), ScalarExpr::Binary { .. }),
            "left for runtime to NULL"
        );
    }

    #[test]
    fn trivial_filter_removed() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: bin(BinOp::Eq, lit(1), lit(1), Schema::Boolean),
        };
        let opt = optimize(plan);
        assert!(matches!(opt, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn stacked_filters_merge() {
        let pred = |i: usize| {
            bin(
                BinOp::Gt,
                ScalarExpr::input(i, Schema::Int),
                lit(0),
                Schema::Boolean,
            )
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: pred(1),
            }),
            predicate: pred(2),
        };
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Filter { input, predicate } => {
                assert!(matches!(*input, LogicalPlan::Scan { .. }));
                assert!(matches!(
                    predicate,
                    ScalarExpr::Binary { op: BinOp::And, .. }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predicate_pushdown_through_project() {
        // Project(units) then Filter(units > 50) ⇒ Filter pushed to scan space.
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(scan()),
                exprs: vec![ScalarExpr::input(2, Schema::Int)],
                names: vec!["units".into()],
            }),
            predicate: bin(
                BinOp::Gt,
                ScalarExpr::input(0, Schema::Int),
                lit(50),
                Schema::Boolean,
            ),
        };
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Project { input, .. } => match *input {
                LogicalPlan::Filter {
                    predicate,
                    input: scan_input,
                } => {
                    assert!(matches!(*scan_input, LogicalPlan::Scan { .. }));
                    assert_eq!(predicate.input_refs(), vec![2], "rewritten into scan space");
                }
                other => panic!("expected filter under project: {other:?}"),
            },
            other => panic!("expected project on top: {other:?}"),
        }
    }

    #[test]
    fn projection_merge_collapses() {
        let inner = LogicalPlan::Project {
            input: Box::new(scan()),
            exprs: vec![
                ScalarExpr::input(2, Schema::Int),
                ScalarExpr::input(0, Schema::Timestamp),
            ],
            names: vec!["units".into(), "rowtime".into()],
        };
        let outer = LogicalPlan::Project {
            input: Box::new(inner),
            exprs: vec![ScalarExpr::input(1, Schema::Timestamp)],
            names: vec!["rowtime".into()],
        };
        let opt = optimize(outer);
        match opt {
            LogicalPlan::Project { input, exprs, .. } => {
                assert!(matches!(*input, LogicalPlan::Scan { .. }));
                assert_eq!(exprs[0].input_refs(), vec![0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn identity_projection_removed() {
        let plan = LogicalPlan::Project {
            input: Box::new(scan()),
            exprs: vec![
                ScalarExpr::input(0, Schema::Timestamp),
                ScalarExpr::input(1, Schema::Int),
                ScalarExpr::input(2, Schema::Int),
            ],
            names: vec!["rowtime".into(), "productId".into(), "units".into()],
        };
        assert!(matches!(optimize(plan), LogicalPlan::Scan { .. }));
    }

    #[test]
    fn filter_pushes_into_join_sides() {
        let join = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            kind: samzasql_parser::ast::JoinKind::Inner,
            equi: vec![(1, 1)],
            time_bound: None,
            residual: None,
        };
        // Conjunct on left side (ref 2) and one spanning both (2 and 5).
        let pred = bin(
            BinOp::And,
            bin(
                BinOp::Gt,
                ScalarExpr::input(2, Schema::Int),
                lit(0),
                Schema::Boolean,
            ),
            bin(
                BinOp::Eq,
                ScalarExpr::input(2, Schema::Int),
                ScalarExpr::input(5, Schema::Int),
                Schema::Boolean,
            ),
            Schema::Boolean,
        );
        let plan = LogicalPlan::Filter {
            input: Box::new(join),
            predicate: pred,
        };
        let opt = optimize(plan);
        // Expect: Filter(span) over Join(Filter(left-side) , scan).
        match opt {
            LogicalPlan::Filter { input, .. } => match *input {
                LogicalPlan::Join { left, right, .. } => {
                    assert!(matches!(*left, LogicalPlan::Filter { .. }));
                    assert!(matches!(*right, LogicalPlan::Scan { .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn floor_time_folds_constants() {
        let e = ScalarExpr::FloorTime {
            expr: Box::new(ScalarExpr::Literal(Value::Timestamp(3_700_000))),
            unit_millis: 3_600_000,
        };
        assert_eq!(fold(&e), ScalarExpr::Literal(Value::Timestamp(3_600_000)));
    }
}
