//! The planner façade: SQL text in, physical plan out.

use crate::catalog::Catalog;
use crate::error::{PlanError, Result};
use crate::logical::LogicalPlan;
use crate::physical::{to_physical, PhysicalPlan};
use crate::rules::optimize;
use crate::validator::validate_query;
use samzasql_parser::{parse_statement, Statement};
use samzasql_serde::Schema;

/// The result of planning one query.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// Original SQL (shipped through the metadata store for step-two
    /// planning at task init).
    pub sql: String,
    /// The optimized logical plan.
    pub logical: LogicalPlan,
    /// The physical plan the operator layer instantiates.
    pub physical: PhysicalPlan,
    /// Planner warnings (timestamp-propagation etc., §7).
    pub warnings: Vec<String>,
    /// Whether this is a continuous query.
    pub is_stream: bool,
    /// Output column names.
    pub output_names: Vec<String>,
    /// Output column types.
    pub output_types: Vec<Schema>,
    /// ORDER BY keys over the output (bounded queries only).
    pub order_by: Vec<(crate::types::ScalarExpr, bool)>,
    /// LIMIT (bounded queries only).
    pub limit: Option<u64>,
}

impl PlannedQuery {
    /// The output record schema, for registering the result topic.
    pub fn output_schema(&self, record_name: &str) -> Schema {
        Schema::Record {
            name: record_name.to_string(),
            fields: self
                .output_names
                .iter()
                .zip(&self.output_types)
                .map(|(n, t)| samzasql_serde::Field {
                    name: n.clone(),
                    schema: t.clone(),
                })
                .collect(),
        }
    }
}

/// The planner: a catalog plus the parse→validate→optimize→physical
/// pipeline (Figure 3).
#[derive(Debug, Clone)]
pub struct Planner {
    catalog: Catalog,
}

impl Planner {
    pub fn new(catalog: Catalog) -> Self {
        Planner { catalog }
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access (view registration, partition-key declarations).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Plan a SELECT statement end to end.
    pub fn plan(&self, sql: &str) -> Result<PlannedQuery> {
        let stmt = parse_statement(sql)?;
        let query = match &stmt {
            Statement::Query(q) | Statement::Explain(q) => q,
            Statement::CreateView { .. } => {
                return Err(PlanError::Semantic(
                    "CREATE VIEW is a DDL statement; use execute_ddl".into(),
                ))
            }
        };
        let validation = validate_query(query, &self.catalog)?;
        let logical = optimize(validation.plan);
        let physical = to_physical(&logical, &self.catalog)?;
        Ok(PlannedQuery {
            sql: sql.to_string(),
            output_names: logical.output_names(),
            output_types: logical.output_types(),
            logical,
            physical,
            warnings: validation.warnings,
            is_stream: validation.is_stream,
            order_by: validation.order_by,
            limit: validation.limit,
        })
    }

    /// Execute DDL: `CREATE VIEW` registers the view in the catalog (after
    /// validating its body against the current catalog).
    pub fn execute_ddl(&mut self, sql: &str) -> Result<String> {
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::CreateView {
                name,
                columns,
                query,
            } => {
                // Validate the body now so bad views fail at definition time.
                validate_query(&query, &self.catalog)?;
                self.catalog.register_view(name.clone(), columns, *query)?;
                Ok(name)
            }
            _ => Err(PlanError::Semantic(
                "execute_ddl only handles CREATE VIEW".into(),
            )),
        }
    }

    /// EXPLAIN: the logical and physical plan renderings.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let planned = self.plan(sql)?;
        let mut out = String::new();
        out.push_str("== Logical plan ==\n");
        out.push_str(&planned.logical.explain());
        out.push_str("== Physical plan ==\n");
        out.push_str(&planned.physical.explain());
        if !planned.warnings.is_empty() {
            out.push_str("== Warnings ==\n");
            for w in &planned.warnings {
                out.push_str(&format!("- {w}\n"));
            }
        }
        Ok(out)
    }
}
