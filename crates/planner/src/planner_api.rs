//! The planner façade: SQL text in, physical plan out.

use crate::catalog::Catalog;
use crate::error::{PlanError, Result};
use crate::logical::LogicalPlan;
use crate::physical::{to_physical, PhysicalPlan};
use crate::rules::optimize;
use crate::validator::validate_query;
use samzasql_parser::{parse_statement, Statement};
use samzasql_serde::Schema;
use std::fmt;
use std::sync::Arc;

/// The result of planning one query.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// Original SQL (shipped through the metadata store for step-two
    /// planning at task init).
    pub sql: String,
    /// The optimized logical plan.
    pub logical: LogicalPlan,
    /// The physical plan the operator layer instantiates.
    pub physical: PhysicalPlan,
    /// Planner warnings (timestamp-propagation etc., §7).
    pub warnings: Vec<String>,
    /// Static-analysis lints attached by [`PlanCheck`] hooks (warnings and
    /// notes; error diagnostics abort planning instead). Kept separate from
    /// [`PlannedQuery::warnings`] so validator warnings keep their meaning.
    pub lints: Vec<String>,
    /// Whether this is a continuous query.
    pub is_stream: bool,
    /// Output column names.
    pub output_names: Vec<String>,
    /// Output column types.
    pub output_types: Vec<Schema>,
    /// ORDER BY keys over the output (bounded queries only).
    pub order_by: Vec<(crate::types::ScalarExpr, bool)>,
    /// LIMIT (bounded queries only).
    pub limit: Option<u64>,
}

impl PlannedQuery {
    /// The output record schema, for registering the result topic.
    pub fn output_schema(&self, record_name: &str) -> Schema {
        Schema::Record {
            name: record_name.to_string(),
            fields: self
                .output_names
                .iter()
                .zip(&self.output_types)
                .map(|(n, t)| samzasql_serde::Field {
                    name: n.clone(),
                    schema: t.clone(),
                })
                .collect(),
        }
    }
}

/// A post-planning static-analysis hook (implemented by `samzasql-analyze`,
/// which cannot be a planner dependency without a cycle).
///
/// Checks run deny-by-default inside [`Planner::plan`]: returning `Err`
/// aborts planning before any job can be created from the plan, while the
/// `Ok` value is a list of lint warnings attached to
/// [`PlannedQuery::lints`].
pub trait PlanCheck: Send + Sync {
    /// Short name for debug output.
    fn name(&self) -> &str;

    /// Inspect a planned query; error diagnostics become `Err`.
    fn check(&self, planned: &PlannedQuery, catalog: &Catalog) -> Result<Vec<String>>;
}

/// The planner: a catalog plus the parse→validate→optimize→physical
/// pipeline (Figure 3), followed by any installed [`PlanCheck`] passes.
#[derive(Clone)]
pub struct Planner {
    catalog: Catalog,
    checks: Vec<Arc<dyn PlanCheck>>,
}

impl fmt::Debug for Planner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Planner")
            .field("catalog", &self.catalog)
            .field(
                "checks",
                &self.checks.iter().map(|c| c.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Planner {
    pub fn new(catalog: Catalog) -> Self {
        Planner {
            catalog,
            checks: Vec::new(),
        }
    }

    /// Install a post-planning check; every subsequent [`Planner::plan`]
    /// call runs it and refuses to return an Error-bearing plan.
    pub fn add_check(&mut self, check: Arc<dyn PlanCheck>) {
        self.checks.push(check);
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access (view registration, partition-key declarations).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Plan a SELECT statement end to end and run all installed
    /// [`PlanCheck`] passes (deny-by-default: an Error diagnostic aborts
    /// planning; lint warnings land in [`PlannedQuery::lints`]).
    pub fn plan(&self, sql: &str) -> Result<PlannedQuery> {
        let mut planned = self.plan_unchecked(sql)?;
        for check in &self.checks {
            let lints = check.check(&planned, &self.catalog)?;
            planned.lints.extend(lints);
        }
        Ok(planned)
    }

    /// Plan without running [`PlanCheck`] passes. Diagnostic tooling
    /// (EXPLAIN, ANALYZE) uses this so an Error-bearing plan can still be
    /// inspected; job submission must go through [`Planner::plan`].
    pub fn plan_unchecked(&self, sql: &str) -> Result<PlannedQuery> {
        let stmt = parse_statement(sql)?;
        let query = match &stmt {
            Statement::Query(q) | Statement::Explain(q) => q,
            Statement::CreateView { .. } => {
                return Err(PlanError::Semantic(
                    "CREATE VIEW is a DDL statement; use execute_ddl".into(),
                ))
            }
        };
        let validation = validate_query(query, &self.catalog)?;
        let logical = optimize(validation.plan);
        let physical = to_physical(&logical, &self.catalog)?;
        Ok(PlannedQuery {
            sql: sql.to_string(),
            output_names: logical.output_names(),
            output_types: logical.output_types(),
            logical,
            physical,
            warnings: validation.warnings,
            lints: Vec::new(),
            is_stream: validation.is_stream,
            order_by: validation.order_by,
            limit: validation.limit,
        })
    }

    /// Execute DDL: `CREATE VIEW` registers the view in the catalog (after
    /// validating its body against the current catalog).
    pub fn execute_ddl(&mut self, sql: &str) -> Result<String> {
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::CreateView {
                name,
                columns,
                query,
            } => {
                // Validate the body now so bad views fail at definition time.
                validate_query(&query, &self.catalog)?;
                self.catalog.register_view(name.clone(), columns, *query)?;
                Ok(name)
            }
            _ => Err(PlanError::Semantic(
                "execute_ddl only handles CREATE VIEW".into(),
            )),
        }
    }

    /// EXPLAIN: the logical and physical plan renderings. The physical plan
    /// carries per-stage partitioning annotations so `RepartitionOp`
    /// placement is auditable. Uses [`Planner::plan_unchecked`]: EXPLAIN is
    /// diagnostic tooling and must render Error-bearing plans too.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let planned = self.plan_unchecked(sql)?;
        let mut out = String::new();
        out.push_str("== Logical plan ==\n");
        out.push_str(&planned.logical.explain());
        out.push_str("== Physical plan ==\n");
        out.push_str(&planned.physical.explain_with_keys(&self.catalog));
        if !planned.warnings.is_empty() {
            out.push_str("== Warnings ==\n");
            for w in &planned.warnings {
                out.push_str(&format!("- {w}\n"));
            }
        }
        Ok(out)
    }
}
