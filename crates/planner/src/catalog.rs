//! The catalog: streams, tables, and views known to the planner.
//!
//! §3.2: SamzaSQL "depends on both the Kafka schema registry and Calcite's
//! built-in JSON based schema descriptions to provide the query planner with
//! the metadata necessary for query planning." The catalog wraps a
//! [`SchemaRegistry`] and adds SamzaSQL-specific metadata: object kind,
//! backing topic, the designated event-timestamp column (§3.1 requires one on
//! every stream), and the stream's partitioning key (used to decide when a
//! join needs repartitioning).

use crate::error::{PlanError, Result};
use samzasql_parser::ast::Query;
use samzasql_serde::{Schema, SchemaRegistry};
use std::collections::BTreeMap;

/// What kind of relation a catalog object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// A partitioned, append-only stream backed by a topic.
    Stream,
    /// A relation available as a changelog stream (bootstrap-joinable).
    Table,
    /// A named query (§3.5).
    View,
}

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct CatalogObject {
    pub name: String,
    pub kind: ObjectKind,
    /// Record schema of the object's tuples (empty for views, whose schema
    /// derives from their definition).
    pub schema: Schema,
    /// Backing topic (streams: the stream topic; tables: the changelog).
    pub topic: Option<String>,
    /// Event-time column name (streams only; §3.1 requires it).
    pub timestamp_field: Option<String>,
    /// Column the producer partitions by, when known.
    pub partition_key: Option<String>,
    /// View definition.
    pub view: Option<ViewDef>,
}

/// A stored view: optional column renames plus the defining query.
#[derive(Debug, Clone)]
pub struct ViewDef {
    pub columns: Vec<String>,
    pub query: Query,
}

/// Name-insensitive catalog of relations.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    objects: BTreeMap<String, CatalogObject>,
    registry: SchemaRegistry,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Create a catalog sharing an existing schema registry.
    pub fn with_registry(registry: SchemaRegistry) -> Self {
        Catalog {
            objects: BTreeMap::new(),
            registry,
        }
    }

    /// The backing schema registry.
    pub fn registry(&self) -> &SchemaRegistry {
        &self.registry
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    fn insert(&mut self, obj: CatalogObject) -> Result<()> {
        let key = Self::key(&obj.name);
        if self.objects.contains_key(&key) {
            return Err(PlanError::Catalog(format!(
                "relation {} already exists",
                obj.name
            )));
        }
        if let (Some(topic), Schema::Record { .. }) = (&obj.topic, &obj.schema) {
            self.registry
                .register(&format!("{topic}-value"), obj.schema.clone())
                .map_err(|e| PlanError::Catalog(e.to_string()))?;
        }
        self.objects.insert(key, obj);
        Ok(())
    }

    /// Register a stream backed by `topic`, with its event-time column.
    pub fn register_stream(
        &mut self,
        name: impl Into<String>,
        topic: impl Into<String>,
        schema: Schema,
        timestamp_field: &str,
    ) -> Result<()> {
        let name = name.into();
        if schema.field_index(timestamp_field).is_none() {
            return Err(PlanError::Catalog(format!(
                "stream {name}: timestamp field {timestamp_field} not in schema"
            )));
        }
        self.insert(CatalogObject {
            name,
            kind: ObjectKind::Stream,
            schema,
            topic: Some(topic.into()),
            timestamp_field: Some(timestamp_field.to_string()),
            partition_key: None,
            view: None,
        })
    }

    /// Register a table available as a changelog stream.
    pub fn register_table(
        &mut self,
        name: impl Into<String>,
        changelog_topic: impl Into<String>,
        schema: Schema,
    ) -> Result<()> {
        self.insert(CatalogObject {
            name: name.into(),
            kind: ObjectKind::Table,
            schema,
            topic: Some(changelog_topic.into()),
            timestamp_field: None,
            partition_key: None,
            view: None,
        })
    }

    /// Register a view over a parsed query.
    pub fn register_view(
        &mut self,
        name: impl Into<String>,
        columns: Vec<String>,
        query: Query,
    ) -> Result<()> {
        self.insert(CatalogObject {
            name: name.into(),
            kind: ObjectKind::View,
            schema: Schema::Null,
            topic: None,
            timestamp_field: None,
            partition_key: None,
            view: Some(ViewDef { columns, query }),
        })
    }

    /// Declare the partitioning column of an existing stream or table.
    pub fn set_partition_key(&mut self, name: &str, key_column: &str) -> Result<()> {
        let obj = self
            .objects
            .get_mut(&Self::key(name))
            .ok_or_else(|| PlanError::UnknownRelation(name.to_string()))?;
        if obj.schema.field_index(key_column).is_none() {
            return Err(PlanError::Catalog(format!(
                "{name}: partition key {key_column} not in schema"
            )));
        }
        obj.partition_key = Some(key_column.to_string());
        Ok(())
    }

    /// Case-insensitive lookup.
    pub fn get(&self, name: &str) -> Result<&CatalogObject> {
        self.objects
            .get(&Self::key(name))
            .ok_or_else(|| PlanError::UnknownRelation(name.to_string()))
    }

    /// The object backed by `topic`, if any (used to recover partition-key
    /// metadata from physical scans, which only carry the topic name).
    pub fn object_by_topic(&self, topic: &str) -> Option<&CatalogObject> {
        self.objects
            .values()
            .find(|o| o.topic.as_deref() == Some(topic))
    }

    /// All object names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.objects.values().map(|o| o.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders_schema() -> Schema {
        Schema::record(
            "Orders",
            vec![
                ("rowtime", Schema::Timestamp),
                ("productId", Schema::Int),
                ("units", Schema::Int),
            ],
        )
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.register_stream("Orders", "orders", orders_schema(), "rowtime")
            .unwrap();
        assert_eq!(c.get("orders").unwrap().name, "Orders");
        assert_eq!(c.get("ORDERS").unwrap().kind, ObjectKind::Stream);
        assert!(c.get("missing").is_err());
    }

    #[test]
    fn stream_requires_timestamp_field_in_schema() {
        let mut c = Catalog::new();
        assert!(matches!(
            c.register_stream("Orders", "orders", orders_schema(), "nope"),
            Err(PlanError::Catalog(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.register_stream("Orders", "orders", orders_schema(), "rowtime")
            .unwrap();
        assert!(c
            .register_table("orders", "orders-changelog", orders_schema())
            .is_err());
    }

    #[test]
    fn registration_publishes_schema_to_registry() {
        let mut c = Catalog::new();
        c.register_stream("Orders", "orders", orders_schema(), "rowtime")
            .unwrap();
        let reg = c.registry().latest("orders-value").unwrap();
        assert_eq!(reg.schema, orders_schema());
    }

    #[test]
    fn partition_key_must_exist() {
        let mut c = Catalog::new();
        c.register_stream("Orders", "orders", orders_schema(), "rowtime")
            .unwrap();
        assert!(c.set_partition_key("Orders", "productId").is_ok());
        assert!(c.set_partition_key("Orders", "ghost").is_err());
        assert_eq!(
            c.get("Orders").unwrap().partition_key.as_deref(),
            Some("productId")
        );
    }
}
