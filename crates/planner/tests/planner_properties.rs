//! Property tests: the planner must return Ok or a structured error — never
//! panic — for arbitrary parseable queries, and optimization must preserve
//! the plan's output shape.

use proptest::prelude::*;
use samzasql_planner::{Catalog, Planner};
use samzasql_serde::Schema;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_stream(
        "Orders",
        "orders",
        Schema::record(
            "Orders",
            vec![
                ("rowtime", Schema::Timestamp),
                ("productId", Schema::Int),
                ("orderId", Schema::Long),
                ("units", Schema::Int),
            ],
        ),
        "rowtime",
    )
    .unwrap();
    c.register_table(
        "Products",
        "products-changelog",
        Schema::record(
            "Products",
            vec![("productId", Schema::Int), ("supplierId", Schema::Int)],
        ),
    )
    .unwrap();
    c
}

/// Random query fragments, many valid, some semantically wrong — the planner
/// must handle all without panicking.
fn sql_strategy() -> impl Strategy<Value = String> {
    let col = prop_oneof![
        Just("rowtime"),
        Just("productId"),
        Just("orderId"),
        Just("units"),
        Just("ghost"), // unknown column: must error cleanly
    ];
    let stream = prop_oneof![Just("STREAM "), Just("")];
    let predicate = (col.clone(), -100i64..100).prop_map(|(c, n)| format!("{c} > {n}"));
    (
        stream,
        prop::collection::vec(col, 1..4),
        prop::option::of(predicate),
        any::<bool>(),
    )
        .prop_map(|(stream, cols, pred, agg)| {
            let mut q = format!("SELECT {stream}");
            if agg {
                q.push_str("productId, COUNT(*), SUM(units)");
            } else {
                q.push_str(&cols.join(", "));
            }
            q.push_str(" FROM Orders");
            if let Some(p) = pred {
                q.push_str(&format!(" WHERE {p}"));
            }
            if agg {
                q.push_str(" GROUP BY productId");
            }
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn planning_never_panics(sql in sql_strategy()) {
        let planner = Planner::new(catalog());
        let _ = planner.plan(&sql);
    }

    /// When planning succeeds, the output names/types agree in arity, the
    /// EXPLAIN renders, and physical output shape equals logical shape.
    #[test]
    fn successful_plans_are_internally_consistent(sql in sql_strategy()) {
        let planner = Planner::new(catalog());
        if let Ok(p) = planner.plan(&sql) {
            prop_assert_eq!(p.output_names.len(), p.output_types.len());
            prop_assert!(!p.output_names.is_empty());
            prop_assert_eq!(p.physical.output_names(), p.output_names.clone());
            prop_assert_eq!(p.physical.output_types(), p.output_types.clone());
            let text = planner.explain(&sql).unwrap();
            prop_assert!(text.contains("ScanOp"));
        }
    }

    /// Join planning with arbitrary equality directions never panics and
    /// extracts a bootstrap join when it succeeds.
    #[test]
    fn join_condition_orientations(flip in any::<bool>(), extra in any::<bool>()) {
        let cond = if flip {
            "Products.productId = Orders.productId"
        } else {
            "Orders.productId = Products.productId"
        };
        let residual = if extra { " AND Orders.units > 5" } else { "" };
        let sql = format!(
            "SELECT STREAM Orders.rowtime, Products.supplierId \
             FROM Orders JOIN Products ON {cond}{residual}"
        );
        let planner = Planner::new(catalog());
        let planned = planner.plan(&sql).unwrap();
        prop_assert!(planned.physical.explain().contains("StreamToRelationJoinOp"));
    }
}
