//! End-to-end planning tests: every paper query through parse → validate →
//! optimize → physical, checking plan shapes and dialect semantics.

use samzasql_planner::{Catalog, GroupWindow, LogicalPlan, PhysicalPlan, PlanError, Planner};
use samzasql_serde::Schema;

/// The paper's example catalog (§3.2): Orders/Packets/Asks/Bids streams and
/// Products/Suppliers tables.
fn paper_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_stream(
        "Orders",
        "orders",
        Schema::record(
            "Orders",
            vec![
                ("rowtime", Schema::Timestamp),
                ("productId", Schema::Int),
                ("orderId", Schema::Long),
                ("units", Schema::Int),
            ],
        ),
        "rowtime",
    )
    .unwrap();
    c.register_table(
        "Products",
        "products-changelog",
        Schema::record(
            "Products",
            vec![
                ("productId", Schema::Int),
                ("name", Schema::String),
                ("supplierId", Schema::Int),
            ],
        ),
    )
    .unwrap();
    c.register_table(
        "Suppliers",
        "suppliers-changelog",
        Schema::record(
            "Suppliers",
            vec![
                ("supplierId", Schema::Int),
                ("name", Schema::String),
                ("location", Schema::String),
            ],
        ),
    )
    .unwrap();
    for packets in ["PacketsR1", "PacketsR2"] {
        c.register_stream(
            packets,
            packets.to_lowercase(),
            Schema::record(
                packets,
                vec![
                    ("rowtime", Schema::Timestamp),
                    ("sourcetime", Schema::Timestamp),
                    ("packetId", Schema::Long),
                ],
            ),
            "rowtime",
        )
        .unwrap();
    }
    for trades in ["Asks", "Bids"] {
        c.register_stream(
            trades,
            trades.to_lowercase(),
            Schema::record(
                trades,
                vec![
                    ("rowtime", Schema::Timestamp),
                    ("id", Schema::Long),
                    ("ticker", Schema::String),
                    ("shares", Schema::Int),
                    ("price", Schema::Double),
                ],
            ),
            "rowtime",
        )
        .unwrap();
    }
    c
}

fn planner() -> Planner {
    Planner::new(paper_catalog())
}

#[test]
fn select_star_is_bare_streaming_scan() {
    let p = planner().plan("SELECT STREAM * FROM Orders").unwrap();
    assert!(p.is_stream);
    assert!(matches!(p.logical, LogicalPlan::Scan { stream: true, .. }));
    assert_eq!(
        p.output_names,
        vec!["rowtime", "productId", "orderId", "units"]
    );
}

#[test]
fn absence_of_stream_keyword_scans_history() {
    let p = planner().plan("SELECT * FROM Orders").unwrap();
    assert!(!p.is_stream);
    assert!(matches!(
        p.physical,
        PhysicalPlan::Scan { bounded: true, .. }
    ));
}

#[test]
fn eval_filter_query_plan_shape() {
    let p = planner()
        .plan("SELECT STREAM * FROM Orders WHERE units > 50")
        .unwrap();
    match &p.physical {
        PhysicalPlan::Filter { input, predicate } => {
            assert!(matches!(**input, PhysicalPlan::Scan { bounded: false, .. }));
            assert_eq!(
                predicate.display(&[
                    "rowtime".into(),
                    "productId".into(),
                    "orderId".into(),
                    "units".into()
                ]),
                "units > 50"
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn eval_project_query_plan_shape() {
    let p = planner()
        .plan("SELECT STREAM rowtime, productId, units FROM Orders")
        .unwrap();
    match &p.physical {
        PhysicalPlan::Project { names, .. } => {
            assert_eq!(names, &vec!["rowtime", "productId", "units"]);
        }
        other => panic!("{other:?}"),
    }
    assert!(
        p.warnings.is_empty(),
        "timestamp kept, no warning: {:?}",
        p.warnings
    );
}

#[test]
fn timestamp_drop_produces_warning() {
    let p = planner()
        .plan("SELECT STREAM productId, units FROM Orders")
        .unwrap();
    assert!(
        p.warnings.iter().any(|w| w.contains("timestamp")),
        "expected §7 timestamp warning: {:?}",
        p.warnings
    );
}

#[test]
fn eval_sliding_window_query_plan_shape() {
    let p = planner()
        .plan(
            "SELECT STREAM rowtime, productId, units, \
             SUM(units) OVER (PARTITION BY productId ORDER BY rowtime \
             RANGE INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes FROM Orders",
        )
        .unwrap();
    match &p.physical {
        PhysicalPlan::Project { input, names, .. } => {
            assert_eq!(names[3], "unitsLastFiveMinutes");
            match &**input {
                PhysicalPlan::SlidingWindow {
                    range_ms,
                    partition_by,
                    ..
                } => {
                    assert_eq!(*range_ms, Some(300_000));
                    assert_eq!(partition_by.len(), 1);
                }
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(p.output_types[3], Schema::Long, "SUM(int) widens to long");
}

#[test]
fn eval_join_query_uses_bootstrap_relation_join() {
    let p = planner()
        .plan(
            "SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, \
             Orders.units, Products.supplierId \
             FROM Orders JOIN Products ON Orders.productId = Products.productId",
        )
        .unwrap();
    match &p.physical {
        PhysicalPlan::Project { input, .. } => match &**input {
            PhysicalPlan::StreamToRelationJoin {
                relation_topic,
                stream_is_left,
                equi,
                ..
            } => {
                assert_eq!(relation_topic, "products-changelog");
                assert!(stream_is_left);
                assert_eq!(
                    equi,
                    &vec![(1, 0)],
                    "stream productId -> relation productId"
                );
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
    assert_eq!(
        p.output_names,
        vec!["rowtime", "orderId", "productId", "units", "supplierId"]
    );
}

#[test]
fn packet_join_extracts_window_bounds() {
    let p = planner()
        .plan(
            "SELECT STREAM GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime, \
             PacketsR1.sourcetime, PacketsR1.packetId, \
             PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel \
             FROM PacketsR1 JOIN PacketsR2 ON \
             PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND \
             AND PacketsR2.rowtime + INTERVAL '2' SECOND \
             AND PacketsR1.packetId = PacketsR2.packetId",
        )
        .unwrap();
    match &p.physical {
        PhysicalPlan::Project { input, .. } => match &**input {
            PhysicalPlan::StreamToStreamJoin {
                time_bound, equi, ..
            } => {
                assert_eq!(time_bound.lower_ms, 2_000);
                assert_eq!(time_bound.upper_ms, 2_000);
                assert_eq!(equi, &vec![(2, 2)], "packetId = packetId");
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
    assert_eq!(
        p.output_types[3],
        Schema::Long,
        "timeToTravel is a duration"
    );
}

#[test]
fn stream_to_stream_join_without_window_rejected() {
    let err = planner()
        .plan(
            "SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 \
             ON PacketsR1.packetId = PacketsR2.packetId",
        )
        .unwrap_err();
    assert!(matches!(err, PlanError::Unsupported(_)), "{err}");
}

#[test]
fn tumbling_window_aggregate_plans() {
    let p = planner()
        .plan(
            "SELECT STREAM START(rowtime), COUNT(*) FROM Orders \
             GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)",
        )
        .unwrap();
    fn find_agg(plan: &PhysicalPlan) -> Option<&PhysicalPlan> {
        match plan {
            PhysicalPlan::WindowAggregate { .. } => Some(plan),
            PhysicalPlan::Project { input, .. } | PhysicalPlan::Filter { input, .. } => {
                find_agg(input)
            }
            _ => None,
        }
    }
    match find_agg(&p.physical) {
        Some(PhysicalPlan::WindowAggregate { window, aggs, .. }) => {
            assert_eq!(
                *window,
                GroupWindow::Tumble {
                    ts_index: 0,
                    size_ms: 3_600_000
                }
            );
            assert_eq!(aggs.len(), 2, "START + COUNT(*)");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn hopping_window_with_alignment_plans() {
    let p = planner()
        .plan(
            "SELECT STREAM START(rowtime), COUNT(*) FROM Orders \
             GROUP BY HOP(rowtime, INTERVAL '1:30' HOUR TO MINUTE, INTERVAL '2' HOUR, TIME '0:30')",
        )
        .unwrap();
    let text = p.physical.explain();
    assert!(
        text.contains("hop(emit=5400000ms, retain=7200000ms, align=1800000ms)"),
        "{text}"
    );
}

#[test]
fn floor_key_becomes_tumbling_window_on_streams() {
    // Listing 3's hourly totals: FLOOR(rowtime TO HOUR) keys act as a
    // one-hour tumbling window when streaming.
    let p = planner()
        .plan(
            "SELECT STREAM FLOOR(rowtime TO HOUR) AS rowtime, productId, \
             COUNT(*) AS c, SUM(units) AS su \
             FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId",
        )
        .unwrap();
    let text = p.physical.explain();
    assert!(text.contains("tumble(3600000ms)"), "{text}");
    assert_eq!(p.output_names, vec!["rowtime", "productId", "c", "su"]);
}

#[test]
fn views_expand_and_ignore_inner_stream_keyword() {
    let mut pl = planner();
    pl.execute_ddl(
        "CREATE VIEW HourlyOrderTotals (rowtime, productId, c, su) AS \
         SELECT FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units) \
         FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId",
    )
    .unwrap();
    let p = pl
        .plan("SELECT STREAM rowtime, productId FROM HourlyOrderTotals WHERE c > 2 OR su > 10")
        .unwrap();
    assert!(p.is_stream, "stream-ness flows into the view body");
    let text = p.logical.explain();
    assert!(
        text.contains("Scan[Orders, stream]"),
        "view expanded to its base stream: {text}"
    );
    assert!(text.contains("Aggregate"), "{text}");
}

#[test]
fn subquery_form_matches_view_form() {
    let p_view = {
        let mut pl = planner();
        pl.execute_ddl(
            "CREATE VIEW V (rowtime, productId, c, su) AS \
             SELECT FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units) \
             FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId",
        )
        .unwrap();
        pl.plan("SELECT STREAM rowtime, productId FROM V WHERE c > 2 OR su > 10")
            .unwrap()
    };
    let p_sub = planner()
        .plan(
            "SELECT STREAM rowtime, productId FROM (\
             SELECT FLOOR(rowtime TO HOUR) AS rowtime, productId, \
             COUNT(*) AS c, SUM(units) AS su \
             FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId) \
             WHERE c > 2 OR su > 10",
        )
        .unwrap();
    assert_eq!(
        p_view.logical, p_sub.logical,
        "views and subqueries plan identically"
    );
}

#[test]
fn having_resolves_against_aggregates() {
    let p = planner()
        .plan("SELECT productId, COUNT(*) FROM Orders GROUP BY productId HAVING COUNT(*) > 2")
        .unwrap();
    let text = p.logical.explain();
    assert!(
        text.contains("Filter"),
        "HAVING becomes a filter above the aggregate: {text}"
    );
}

#[test]
fn predicate_pushdown_happens() {
    // Filter over projection: optimizer pushes it below.
    let p = planner()
        .plan("SELECT STREAM rowtime, units FROM (SELECT STREAM rowtime, productId, units FROM Orders) WHERE units > 10")
        .unwrap();
    let text = p.logical.explain();
    let filter_pos = text.find("Filter").expect("has filter");
    let project_pos = text.find("Project").expect("has project");
    assert!(
        filter_pos > project_pos,
        "filter below project after pushdown:\n{text}"
    );
}

#[test]
fn unknown_references_error_cleanly() {
    assert!(matches!(
        planner().plan("SELECT STREAM * FROM Nope"),
        Err(PlanError::UnknownRelation(_))
    ));
    assert!(matches!(
        planner().plan("SELECT STREAM ghost FROM Orders"),
        Err(PlanError::UnknownColumn { .. })
    ));
    assert!(matches!(
        planner().plan("SELECT STREAM o.rowtime FROM Orders o JOIN Products p ON o.productId = p.productId WHERE productId > 0"),
        Err(PlanError::AmbiguousColumn(_))
    ));
}

#[test]
fn type_errors_are_caught() {
    assert!(matches!(
        planner().plan("SELECT STREAM * FROM Orders WHERE units + 1"),
        Err(PlanError::Type(_))
    ));
    assert!(matches!(
        planner().plan("SELECT STREAM * FROM Orders WHERE rowtime > 'abc'"),
        Err(PlanError::Type(_))
    ));
}

#[test]
fn streaming_group_by_without_window_rejected() {
    assert!(matches!(
        planner().plan("SELECT STREAM productId, COUNT(*) FROM Orders GROUP BY productId"),
        Err(PlanError::Unsupported(_))
    ));
}

#[test]
fn bounded_group_by_without_window_allowed() {
    // Without STREAM it is a historical relational aggregate (§3.3).
    let p = planner()
        .plan("SELECT productId, COUNT(*) FROM Orders GROUP BY productId")
        .unwrap();
    assert!(!p.is_stream);
    assert!(
        p.physical.explain().contains("relational"),
        "{}",
        p.physical.explain()
    );
}

#[test]
fn order_by_rejected_on_streams_allowed_bounded() {
    assert!(planner()
        .plan("SELECT STREAM * FROM Orders ORDER BY rowtime")
        .is_err());
    assert!(planner()
        .plan("SELECT * FROM Orders ORDER BY rowtime LIMIT 5")
        .is_ok());
}

#[test]
fn relation_to_relation_join_rejected() {
    let err = planner()
        .plan(
            "SELECT STREAM Products.name FROM Products JOIN Suppliers \
             ON Products.supplierId = Suppliers.supplierId",
        )
        .unwrap_err();
    assert!(matches!(err, PlanError::Unsupported(_)), "{err}");
}

#[test]
fn repartition_inserted_when_partition_key_differs() {
    let mut pl = planner();
    pl.catalog_mut()
        .set_partition_key("Orders", "orderId")
        .unwrap();
    let p = pl
        .plan(
            "SELECT STREAM Orders.rowtime, Products.supplierId \
             FROM Orders JOIN Products ON Orders.productId = Products.productId",
        )
        .unwrap();
    assert!(
        p.physical.explain().contains("RepartitionOp"),
        "{}",
        p.physical.explain()
    );

    // And when the keys match, no repartition.
    let mut pl2 = planner();
    pl2.catalog_mut()
        .set_partition_key("Orders", "productId")
        .unwrap();
    let p2 = pl2
        .plan(
            "SELECT STREAM Orders.rowtime, Products.supplierId \
             FROM Orders JOIN Products ON Orders.productId = Products.productId",
        )
        .unwrap();
    assert!(!p2.physical.explain().contains("RepartitionOp"));
}

#[test]
fn explain_renders_both_plans() {
    let text = planner()
        .explain("SELECT STREAM * FROM Orders WHERE units > 50")
        .unwrap();
    assert!(text.contains("== Logical plan =="));
    assert!(text.contains("== Physical plan =="));
    assert!(text.contains("FilterOp"));
}

#[test]
fn input_topics_and_state_detection() {
    let p = planner()
        .plan(
            "SELECT STREAM Orders.rowtime, Products.supplierId \
             FROM Orders JOIN Products ON Orders.productId = Products.productId",
        )
        .unwrap();
    let topics = p.physical.input_topics();
    assert_eq!(
        topics,
        vec![
            ("orders".to_string(), false),
            ("products-changelog".to_string(), true)
        ]
    );
    assert!(p.physical.needs_local_state());

    let p2 = planner()
        .plan("SELECT STREAM * FROM Orders WHERE units > 50")
        .unwrap();
    assert!(!p2.physical.needs_local_state());
}

#[test]
fn multiple_over_windows_in_one_select() {
    let p = planner()
        .plan(
            "SELECT STREAM rowtime, productId, \
             SUM(units) OVER (PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE PRECEDING) w5, \
             SUM(units) OVER (PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '1' HOUR PRECEDING) w60 \
             FROM Orders",
        )
        .unwrap();
    assert_eq!(p.output_names, vec!["rowtime", "productId", "w5", "w60"]);
    // Two chained sliding-window nodes.
    let text = p.physical.explain();
    assert_eq!(text.matches("SlidingWindowOp").count(), 2, "{text}");
}

#[test]
fn select_distinct_rejected_on_stream_allowed_bounded() {
    assert!(planner()
        .plan("SELECT STREAM DISTINCT productId FROM Orders")
        .is_err());
    assert!(planner()
        .plan("SELECT DISTINCT productId FROM Orders")
        .is_ok());
}
