//! Products relation generator (changelog-stream form, §4.4).

use crate::products_schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use samzasql_kafka::Message;
use samzasql_serde::avro::AvroCodec;
use samzasql_serde::object::ObjectCodec;
use samzasql_serde::Value;

/// Parameters of the Products relation.
#[derive(Debug, Clone)]
pub struct ProductsSpec {
    pub seed: u64,
    /// Number of products; ids are `0..products`.
    pub products: i32,
    /// Number of distinct suppliers.
    pub suppliers: i32,
}

impl Default for ProductsSpec {
    fn default() -> Self {
        ProductsSpec {
            seed: 7,
            products: 100,
            suppliers: 10,
        }
    }
}

/// Generates the initial snapshot of the relation as changelog records,
/// plus random updates.
pub struct ProductsGenerator {
    spec: ProductsSpec,
    rng: StdRng,
    codec: AvroCodec,
    key_codec: ObjectCodec,
}

impl ProductsGenerator {
    pub fn new(spec: ProductsSpec) -> Self {
        ProductsGenerator {
            rng: StdRng::seed_from_u64(spec.seed),
            codec: AvroCodec::new(products_schema()),
            key_codec: ObjectCodec::new(),
            spec,
        }
    }

    /// One product row.
    pub fn row(&mut self, product_id: i32) -> Value {
        let supplier = self.rng.gen_range(0..self.spec.suppliers);
        Value::record(vec![
            ("productId", Value::Int(product_id)),
            ("name", Value::String(format!("product-{product_id}"))),
            ("supplierId", Value::Int(supplier)),
        ])
    }

    fn to_message(&self, row: &Value) -> Message {
        let key = self
            .key_codec
            .encode(row.field("productId").expect("productId"))
            .expect("key encode");
        Message {
            key: Some(key),
            value: self.codec.encode(row).expect("encode"),
            timestamp: 0,
        }
    }

    /// The full relation snapshot as changelog messages (one per product),
    /// keyed by productId for co-partitioning with Orders.
    pub fn snapshot(&mut self) -> Vec<Message> {
        (0..self.spec.products)
            .map(|pid| {
                let row = self.row(pid);
                self.to_message(&row)
            })
            .collect()
    }

    /// A random update to an existing product (changelog upsert).
    pub fn random_update(&mut self) -> Message {
        let pid = self.rng.gen_range(0..self.spec.products);
        let row = self.row(pid);
        self.to_message(&row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_covers_every_product_once() {
        let mut g = ProductsGenerator::new(ProductsSpec::default());
        let snap = g.snapshot();
        assert_eq!(snap.len(), 100);
        let codec = AvroCodec::new(crate::products_schema());
        let mut ids: Vec<i64> = snap
            .iter()
            .map(|m| {
                codec
                    .decode(&m.value)
                    .unwrap()
                    .field("productId")
                    .unwrap()
                    .as_i64()
                    .unwrap()
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn messages_are_keyed_by_product() {
        let mut g = ProductsGenerator::new(ProductsSpec::default());
        let snap = g.snapshot();
        let key_codec = ObjectCodec::new();
        assert_eq!(
            snap[5].key.as_deref().unwrap(),
            key_codec.encode(&Value::Int(5)).unwrap().as_ref()
        );
    }

    #[test]
    fn updates_reference_known_products() {
        let mut g = ProductsGenerator::new(ProductsSpec::default());
        let codec = AvroCodec::new(crate::products_schema());
        for _ in 0..20 {
            let m = g.random_update();
            let pid = codec
                .decode(&m.value)
                .unwrap()
                .field("productId")
                .unwrap()
                .as_i64()
                .unwrap();
            assert!((0..100).contains(&pid));
        }
    }
}
