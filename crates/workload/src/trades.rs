//! Asks/Bids trading streams (§3.2's schema examples), used by the
//! domain-specific examples.

use crate::trades_schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use samzasql_kafka::Message;
use samzasql_serde::avro::AvroCodec;
use samzasql_serde::Value;

/// Parameters of the trading workload.
#[derive(Debug, Clone)]
pub struct TradesSpec {
    pub seed: u64,
    pub tickers: Vec<String>,
    /// Event-time gap between consecutive trades.
    pub inter_arrival_ms: i64,
    /// Price random walk: mid ± walk.
    pub base_price: f64,
    pub walk: f64,
}

impl Default for TradesSpec {
    fn default() -> Self {
        TradesSpec {
            seed: 23,
            tickers: vec!["ORCL".into(), "MSFT".into(), "AAPL".into(), "IBM".into()],
            inter_arrival_ms: 50,
            base_price: 100.0,
            walk: 2.0,
        }
    }
}

/// Generates one stream (asks or bids); use two instances with different
/// seeds for both sides of a market.
pub struct TradesGenerator {
    spec: TradesSpec,
    rng: StdRng,
    codec: AvroCodec,
    name: String,
    next_id: i64,
    now_ms: i64,
    prices: Vec<f64>,
}

impl TradesGenerator {
    pub fn new(name: &str, spec: TradesSpec) -> Self {
        let prices = vec![spec.base_price; spec.tickers.len()];
        TradesGenerator {
            rng: StdRng::seed_from_u64(spec.seed),
            codec: AvroCodec::new(trades_schema(name)),
            name: name.to_string(),
            next_id: 0,
            now_ms: 0,
            prices,
            spec,
        }
    }

    /// Next trade record.
    pub fn next_value(&mut self) -> Value {
        let t = self.rng.gen_range(0..self.spec.tickers.len());
        self.prices[t] += self.rng.gen_range(-self.spec.walk..=self.spec.walk);
        self.prices[t] = self.prices[t].max(1.0);
        let v = Value::record(vec![
            ("rowtime", Value::Timestamp(self.now_ms)),
            ("id", Value::Long(self.next_id)),
            ("ticker", Value::String(self.spec.tickers[t].clone())),
            ("shares", Value::Int(self.rng.gen_range(1..=1_000))),
            (
                "price",
                Value::Double((self.prices[t] * 100.0).round() / 100.0),
            ),
        ]);
        self.next_id += 1;
        self.now_ms += self.spec.inter_arrival_ms;
        v
    }

    /// Next trade as an encoded message keyed by ticker.
    pub fn next_message(&mut self) -> Message {
        let v = self.next_value();
        let ts = v.field("rowtime").and_then(|t| t.as_i64()).unwrap_or(0);
        let key = v
            .field("ticker")
            .and_then(|t| t.as_str())
            .unwrap_or("")
            .to_string();
        Message {
            key: Some(bytes::Bytes::from(key)),
            value: self.codec.encode(&v).expect("trade encode"),
            timestamp: ts,
        }
    }

    /// The stream this generator produces for.
    pub fn stream_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_stay_positive_and_rounded() {
        let mut g = TradesGenerator::new(
            "Asks",
            TradesSpec {
                walk: 50.0,
                ..Default::default()
            },
        );
        for _ in 0..200 {
            let v = g.next_value();
            let p = v.field("price").unwrap().as_f64().unwrap();
            assert!(p >= 1.0);
            assert!(
                (p * 100.0 - (p * 100.0).round()).abs() < 1e-9,
                "2-decimal rounding"
            );
        }
    }

    #[test]
    fn tickers_from_spec_only() {
        let mut g = TradesGenerator::new("Bids", TradesSpec::default());
        for _ in 0..50 {
            let v = g.next_value();
            let t = v.field("ticker").unwrap().as_str().unwrap().to_string();
            assert!(["ORCL", "MSFT", "AAPL", "IBM"].contains(&t.as_str()));
        }
    }

    #[test]
    fn keyed_by_ticker() {
        let mut g = TradesGenerator::new("Asks", TradesSpec::default());
        let m = g.next_message();
        let key = String::from_utf8(m.key.unwrap().to_vec()).unwrap();
        assert!(["ORCL", "MSFT", "AAPL", "IBM"].contains(&key.as_str()));
    }
}
