//! Simple rate limiting for load generators.

use std::time::{Duration, Instant};

/// Paces a producer loop to a target messages/second rate. Call
/// [`RateLimiter::pace`] once per message; it sleeps when ahead of schedule.
#[derive(Debug)]
pub struct RateLimiter {
    per_second: f64,
    started: Instant,
    produced: u64,
}

impl RateLimiter {
    /// `per_second = 0` disables pacing (run flat out).
    pub fn new(per_second: u64) -> Self {
        RateLimiter {
            per_second: per_second as f64,
            started: Instant::now(),
            produced: 0,
        }
    }

    /// Account one message; sleep if production is ahead of the target rate.
    pub fn pace(&mut self) {
        self.produced += 1;
        if self.per_second <= 0.0 {
            return;
        }
        let target_elapsed = Duration::from_secs_f64(self.produced as f64 / self.per_second);
        let actual = self.started.elapsed();
        if target_elapsed > actual {
            std::thread::sleep(target_elapsed - actual);
        }
    }

    /// Achieved rate so far (messages/second).
    pub fn achieved(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.produced as f64 / secs
        }
    }

    /// Messages accounted so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_sleeps() {
        let mut r = RateLimiter::new(0);
        let start = Instant::now();
        for _ in 0..10_000 {
            r.pace();
        }
        assert!(start.elapsed() < Duration::from_millis(200));
        assert_eq!(r.produced(), 10_000);
    }

    #[test]
    fn limited_rate_is_respected() {
        let mut r = RateLimiter::new(1_000);
        for _ in 0..100 {
            r.pace();
        }
        // 100 messages at 1000/s should take ≥ ~100ms.
        let rate = r.achieved();
        assert!(
            rate <= 1_200.0,
            "achieved {rate}/s exceeds target by too much"
        );
    }
}
