//! Correlated packet-observation streams for the stream-to-stream join
//! (Listing 7): every packet is seen at router R1 and again at router R2
//! after a random network delay.

use crate::packets_schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use samzasql_kafka::Message;
use samzasql_serde::avro::AvroCodec;
use samzasql_serde::Value;

/// Parameters of the packet workload.
#[derive(Debug, Clone)]
pub struct PacketsSpec {
    pub seed: u64,
    /// Event-time gap between consecutive packets at R1.
    pub inter_arrival_ms: i64,
    /// Network delay R1→R2 uniform in `[min_delay_ms, max_delay_ms]`.
    pub min_delay_ms: i64,
    pub max_delay_ms: i64,
}

impl Default for PacketsSpec {
    fn default() -> Self {
        PacketsSpec {
            seed: 11,
            inter_arrival_ms: 100,
            min_delay_ms: 100,
            max_delay_ms: 1_500,
        }
    }
}

/// One packet observed at both routers.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketPair {
    pub r1: Value,
    pub r2: Value,
    pub delay_ms: i64,
}

/// Deterministic correlated-pair generator.
pub struct PacketsGenerator {
    spec: PacketsSpec,
    rng: StdRng,
    r1_codec: AvroCodec,
    r2_codec: AvroCodec,
    next_id: i64,
    now_ms: i64,
}

impl PacketsGenerator {
    pub fn new(spec: PacketsSpec) -> Self {
        PacketsGenerator {
            rng: StdRng::seed_from_u64(spec.seed),
            r1_codec: AvroCodec::new(packets_schema("PacketsR1")),
            r2_codec: AvroCodec::new(packets_schema("PacketsR2")),
            next_id: 0,
            now_ms: 0,
            spec,
        }
    }

    /// Next correlated pair.
    pub fn next_pair(&mut self) -> PacketPair {
        let delay = self
            .rng
            .gen_range(self.spec.min_delay_ms..=self.spec.max_delay_ms);
        let source = self.now_ms;
        let packet = |rowtime: i64, id: i64| {
            Value::record(vec![
                ("rowtime", Value::Timestamp(rowtime)),
                ("sourcetime", Value::Timestamp(source)),
                ("packetId", Value::Long(id)),
            ])
        };
        let pair = PacketPair {
            r1: packet(self.now_ms, self.next_id),
            r2: packet(self.now_ms + delay, self.next_id),
            delay_ms: delay,
        };
        self.next_id += 1;
        self.now_ms += self.spec.inter_arrival_ms;
        pair
    }

    /// Next pair as (R1 message, R2 message).
    pub fn next_messages(&mut self) -> (Message, Message) {
        let pair = self.next_pair();
        let msg = |codec: &AvroCodec, v: &Value| {
            let ts = v.field("rowtime").and_then(|t| t.as_i64()).unwrap_or(0);
            Message {
                key: None,
                value: codec.encode(v).expect("packet encode"),
                timestamp: ts,
            }
        };
        (msg(&self.r1_codec, &pair.r1), msg(&self.r2_codec, &pair.r2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_share_id_and_sourcetime() {
        let mut g = PacketsGenerator::new(PacketsSpec::default());
        for _ in 0..20 {
            let p = g.next_pair();
            assert_eq!(p.r1.field("packetId"), p.r2.field("packetId"));
            assert_eq!(p.r1.field("sourcetime"), p.r2.field("sourcetime"));
            let t1 = p.r1.field("rowtime").unwrap().as_i64().unwrap();
            let t2 = p.r2.field("rowtime").unwrap().as_i64().unwrap();
            assert_eq!(t2 - t1, p.delay_ms);
            assert!((100..=1_500).contains(&p.delay_ms));
        }
    }

    #[test]
    fn ids_are_dense_and_time_advances() {
        let mut g = PacketsGenerator::new(PacketsSpec::default());
        let a = g.next_pair();
        let b = g.next_pair();
        assert_eq!(a.r1.field("packetId"), Some(&Value::Long(0)));
        assert_eq!(b.r1.field("packetId"), Some(&Value::Long(1)));
        assert!(b.r1.field("rowtime").unwrap().as_i64() > a.r1.field("rowtime").unwrap().as_i64());
    }

    #[test]
    fn deterministic() {
        let a: Vec<PacketPair> = (0..10)
            .map(|_| PacketsGenerator::new(PacketsSpec::default()).next_pair())
            .collect();
        assert!(
            a.windows(2).all(|w| w[0] == w[1]),
            "same seed, same first pair"
        );
    }
}
