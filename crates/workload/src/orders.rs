//! Orders stream generator.

use crate::orders_schema;
use bytes::Bytes;
use rand::distributions::Alphanumeric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use samzasql_kafka::Message;
use samzasql_serde::avro::AvroCodec;
use samzasql_serde::object::ObjectCodec;
use samzasql_serde::Value;

/// Parameters of the Orders workload.
#[derive(Debug, Clone)]
pub struct OrdersSpec {
    pub seed: u64,
    /// Number of distinct products.
    pub products: i32,
    /// Units are uniform in `1..=max_units`; the evaluation filter
    /// `units > 50` with `max_units = 100` passes ~50% of tuples.
    pub max_units: i32,
    /// Milliseconds of event time between consecutive orders.
    pub inter_arrival_ms: i64,
    /// Target total message size in bytes; the `pad` column is sized to
    /// reach it (§5.1 uses ~100-byte messages).
    pub message_bytes: usize,
}

impl Default for OrdersSpec {
    fn default() -> Self {
        OrdersSpec {
            seed: 42,
            products: 100,
            max_units: 100,
            inter_arrival_ms: 10,
            message_bytes: 100,
        }
    }
}

/// Deterministic Orders generator.
pub struct OrdersGenerator {
    spec: OrdersSpec,
    rng: StdRng,
    codec: AvroCodec,
    key_codec: ObjectCodec,
    next_order_id: i64,
    now_ms: i64,
    pad_len: usize,
}

impl OrdersGenerator {
    pub fn new(spec: OrdersSpec) -> Self {
        // Fixed (non-pad) field estimate: rowtime+ids+units varints ≈ 14 B.
        let pad_len = spec.message_bytes.saturating_sub(14).max(1);
        OrdersGenerator {
            rng: StdRng::seed_from_u64(spec.seed),
            codec: AvroCodec::new(orders_schema()),
            key_codec: ObjectCodec::new(),
            next_order_id: 0,
            now_ms: 0,
            pad_len,
            spec,
        }
    }

    /// Next order as a decoded record.
    pub fn next_value(&mut self) -> Value {
        let product = self.rng.gen_range(0..self.spec.products);
        let units = self.rng.gen_range(1..=self.spec.max_units);
        let pad: String = (&mut self.rng)
            .sample_iter(&Alphanumeric)
            .take(self.pad_len)
            .map(char::from)
            .collect();
        let v = Value::record(vec![
            ("rowtime", Value::Timestamp(self.now_ms)),
            ("productId", Value::Int(product)),
            ("orderId", Value::Long(self.next_order_id)),
            ("units", Value::Int(units)),
            ("pad", Value::String(pad)),
        ]);
        self.next_order_id += 1;
        self.now_ms += self.spec.inter_arrival_ms;
        v
    }

    /// Next order as an Avro-encoded broker message, keyed by productId so
    /// co-partitioned joins line up.
    pub fn next_message(&mut self) -> Message {
        let v = self.next_value();
        let ts = v.field("rowtime").and_then(|t| t.as_i64()).unwrap_or(0);
        let key = self
            .key_codec
            .encode(v.field("productId").expect("productId"))
            .expect("encode key");
        let payload = self.codec.encode(&v).expect("orders encode");
        Message {
            key: Some(key),
            value: payload,
            timestamp: ts,
        }
    }

    /// Generate `n` encoded messages.
    pub fn messages(&mut self, n: usize) -> Vec<Message> {
        (0..n).map(|_| self.next_message()).collect()
    }

    /// The codec used for encoding (decode side of benchmarks).
    pub fn codec(&self) -> &AvroCodec {
        &self.codec
    }
}

/// Convenience: n encoded order messages under the default spec.
pub fn default_orders(n: usize) -> Vec<Message> {
    OrdersGenerator::new(OrdersSpec::default()).messages(n)
}

/// The raw bytes of one encoded order (for size assertions/benches).
pub fn sample_payload() -> Bytes {
    OrdersGenerator::new(OrdersSpec::default())
        .next_message()
        .value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<Message> = OrdersGenerator::new(OrdersSpec::default()).messages(50);
        let b: Vec<Message> = OrdersGenerator::new(OrdersSpec::default()).messages(50);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = OrdersGenerator::new(OrdersSpec {
            seed: 1,
            ..Default::default()
        })
        .messages(10);
        let b = OrdersGenerator::new(OrdersSpec {
            seed: 2,
            ..Default::default()
        })
        .messages(10);
        assert_ne!(a, b);
    }

    #[test]
    fn messages_are_about_100_bytes() {
        let mut g = OrdersGenerator::new(OrdersSpec::default());
        for _ in 0..20 {
            let m = g.next_message();
            let len = m.value.len();
            assert!(
                (90..=110).contains(&len),
                "payload {len} outside ~100B window"
            );
        }
    }

    #[test]
    fn event_time_advances_and_ids_are_dense() {
        let mut g = OrdersGenerator::new(OrdersSpec::default());
        let v1 = g.next_value();
        let v2 = g.next_value();
        assert_eq!(v1.field("orderId"), Some(&Value::Long(0)));
        assert_eq!(v2.field("orderId"), Some(&Value::Long(1)));
        assert!(v2.field("rowtime").unwrap().as_i64() > v1.field("rowtime").unwrap().as_i64());
    }

    #[test]
    fn units_within_bounds_and_filter_selectivity_sane() {
        let mut g = OrdersGenerator::new(OrdersSpec::default());
        let mut over_50 = 0;
        for _ in 0..1000 {
            let v = g.next_value();
            let u = v.field("units").unwrap().as_i64().unwrap();
            assert!((1..=100).contains(&u));
            if u > 50 {
                over_50 += 1;
            }
        }
        assert!(
            (400..=600).contains(&over_50),
            "~50% selectivity, got {over_50}/1000"
        );
    }

    #[test]
    fn payload_roundtrips_through_codec() {
        let mut g = OrdersGenerator::new(OrdersSpec::default());
        let m = g.next_message();
        let decoded = g.codec().decode(&m.value).unwrap();
        assert!(decoded.field("productId").is_some());
    }
}
