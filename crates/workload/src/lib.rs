//! # samzasql-workload
//!
//! Synthetic workload generators for the SamzaSQL evaluation (§5.1):
//!
//! * **Orders** stream — `(rowtime, productId, orderId, units)` padded with
//!   "a random string to each record" so every message is ~100 bytes, the
//!   size the Kafka benchmark cited by the paper found to balance msgs/s
//!   against MB/s.
//! * **Products** relation — `(productId, name, supplierId)` plus its
//!   changelog stream.
//! * **PacketsR1/R2** — correlated packet observations at two routers with a
//!   configurable network delay, for the stream-to-stream join (Listing 7).
//! * **Asks/Bids** — the trading streams from §3.2's schema examples.
//!
//! Everything is deterministic under a seed; generators produce both decoded
//! [`samzasql_serde::Value`] records and Avro-encoded messages ready for the broker.

pub mod orders;
pub mod packets;
pub mod products;
pub mod rate;
pub mod trades;

pub use orders::{OrdersGenerator, OrdersSpec};
pub use packets::{PacketPair, PacketsGenerator, PacketsSpec};
pub use products::{ProductsGenerator, ProductsSpec};
pub use rate::RateLimiter;
pub use trades::{TradesGenerator, TradesSpec};

use samzasql_serde::Schema;

/// Schema of the Orders stream (§3.2), with the padding column that brings
/// messages to the benchmark's ~100-byte size.
pub fn orders_schema() -> Schema {
    Schema::record(
        "Orders",
        vec![
            ("rowtime", Schema::Timestamp),
            ("productId", Schema::Int),
            ("orderId", Schema::Long),
            ("units", Schema::Int),
            ("pad", Schema::String),
        ],
    )
}

/// Schema of the Products relation (§3.2).
pub fn products_schema() -> Schema {
    Schema::record(
        "Products",
        vec![
            ("productId", Schema::Int),
            ("name", Schema::String),
            ("supplierId", Schema::Int),
        ],
    )
}

/// Schema of the PacketsR1/PacketsR2 streams (§3.2).
pub fn packets_schema(name: &str) -> Schema {
    Schema::record(
        name,
        vec![
            ("rowtime", Schema::Timestamp),
            ("sourcetime", Schema::Timestamp),
            ("packetId", Schema::Long),
        ],
    )
}

/// Schema of the Asks/Bids streams (§3.2).
pub fn trades_schema(name: &str) -> Schema {
    Schema::record(
        name,
        vec![
            ("rowtime", Schema::Timestamp),
            ("id", Schema::Long),
            ("ticker", Schema::String),
            ("shares", Schema::Int),
            ("price", Schema::Double),
        ],
    )
}
