#!/usr/bin/env bash
# The CI gate, runnable locally: formatting, lints, release build, tests.
#
# Cargo.lock policy: this workspace is library-style and does not commit a
# lockfile — every CI run resolves fresh. (Local builds in sandboxed
# environments may resolve dependencies against vendored stand-ins whose
# versions must never be pinned into the repo.)
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace

# Seeded chaos pass: six fault schedules × four query shapes must converge
# to their fault-free baselines (see docs/CHAOS.md). Runs with the suite's
# pinned seeds by default; export CHAOS_SEED=<n> to reproduce one failing
# schedule — the whole run is a pure function of the seed.
cargo test -p samzasql-samza --test chaos
# Benches must keep compiling (they are the paper's evaluation harness),
# but CI does not pay to run them.
cargo bench --workspace --no-run

# Static plan analysis over the committed SQL corpus: every fixture must
# emit exactly the diagnostic codes its `-- expect:` header declares, so
# seeded-bug fixtures keep firing and the paper's canonical queries stay
# clean (see docs/DIAGNOSTICS.md).
cargo run --release -p samzasql-analyze --bin plan-lint -- crates/analyze/tests/corpus
# The corpus deliberately contains Error-bearing plans; a plain error gate
# (`--deny`, the production-lint mode) must refuse it.
if cargo run --release -p samzasql-analyze --bin plan-lint -- --deny crates/analyze/tests/corpus >/dev/null 2>&1; then
  echo "ci.sh: plan-lint --deny unexpectedly accepted the seeded corpus" >&2
  exit 1
fi

# Observability pass: EXPLAIN ANALYZE must annotate every operator of the
# four clean paper shapes in the corpus, and the Prometheus exporter output
# must validate (unique series, monotone counters, consistent histograms).
# See docs/OBSERVABILITY.md.
cargo run --release -p samzasql-bench --bin explain_analyze -- crates/analyze/tests/corpus
