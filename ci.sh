#!/usr/bin/env bash
# The CI gate, runnable locally: formatting, lints, release build, tests.
#
# Cargo.lock policy: this workspace is library-style and does not commit a
# lockfile — every CI run resolves fresh. (Local builds in sandboxed
# environments may resolve dependencies against vendored stand-ins whose
# versions must never be pinned into the repo.)
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace
# Benches must keep compiling (they are the paper's evaluation harness),
# but CI does not pay to run them.
cargo bench --workspace --no-run
