//! # samzasql
//!
//! A from-scratch Rust reproduction of **SamzaSQL** ("SamzaSQL: Scalable
//! Fast Data Management with Streaming SQL", IPDPS Workshops 2016): a
//! streaming SQL engine that compiles standard SQL with minimal stream
//! extensions into operator DAGs executed on a Samza-like distributed
//! stream-processing runtime over a Kafka-like partitioned log.
//!
//! This crate is the facade over the workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`kafka`] | `samzasql-kafka` | in-memory partitioned commit-log broker |
//! | [`serde`] | `samzasql-serde` | schemas, Avro-like/JSON/object codecs, registry |
//! | [`samza`] | `samzasql-samza` | stream tasks, containers, local state, cluster sim |
//! | [`parser`] | `samzasql-parser` | SQL + streaming extensions (STREAM, TUMBLE/HOP, OVER) |
//! | [`planner`] | `samzasql-planner` | catalog, validator, optimizer, physical plans |
//! | [`coord`] | `samzasql-coord` | ZooKeeper-style coordination: znodes, sessions, watches |
//! | [`core`] | `samzasql-core` | operators, message router, shell — the paper's contribution |
//! | [`workload`] | `samzasql-workload` | synthetic evaluation workloads |
//!
//! ## Quick start
//!
//! ```
//! use samzasql::prelude::*;
//!
//! let broker = Broker::new();
//! broker.create_topic("orders", TopicConfig::with_partitions(4)).unwrap();
//!
//! let mut shell = SamzaSqlShell::new(broker);
//! shell.register_stream("Orders", "orders", Schema::record("Orders", vec![
//!     ("rowtime", Schema::Timestamp),
//!     ("productId", Schema::Int),
//!     ("units", Schema::Int),
//! ]), "rowtime").unwrap();
//!
//! // Continuous query (Kappa style): SELECT STREAM …
//! let mut big_orders = shell.submit(
//!     "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 50"
//! ).unwrap();
//!
//! shell.produce("Orders", Value::record(vec![
//!     ("rowtime", Value::Timestamp(1_000)),
//!     ("productId", Value::Int(7)),
//!     ("units", Value::Int(75)),
//! ])).unwrap();
//!
//! let rows = big_orders.await_outputs(1, std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!(rows[0].field("units"), Some(&Value::Int(75)));
//! big_orders.stop().unwrap();
//! ```

pub use samzasql_analyze as analyze;
pub use samzasql_coord as coord;
pub use samzasql_core as core;
pub use samzasql_kafka as kafka;
pub use samzasql_obs as obs;
pub use samzasql_parser as parser;
pub use samzasql_planner as planner;
pub use samzasql_samza as samza;
pub use samzasql_serde as serde;
pub use samzasql_workload as workload;

/// The items most applications need.
pub mod prelude {
    pub use samzasql_coord::{Coord, CreateMode, ManualClock};
    pub use samzasql_core::shell::{QueryHandle, SamzaSqlShell};
    pub use samzasql_core::udaf::{UdafRegistry, UserAggregate};
    pub use samzasql_kafka::{Broker, Message, TopicConfig};
    pub use samzasql_samza::{ClusterSim, NodeConfig};
    pub use samzasql_serde::{Schema, Value};
}
